"""MSCN adapted to cost estimation (paper Section V-A, Implementation).

The original multi-set convolutional network pools three feature sets
(tables, joins, predicates) through per-set MLPs and concatenates the
averages into a final MLP predicting cardinality.  Following the paper
we (i) retarget the output to query latency and (ii) append the
fine-grained operator features of the query's plan — the averaged
QPPNet-style node encodings, which carry cardinalities and, under QCFE,
the feature-snapshot block.

QCFE's feature reduction applies to that global operator-feature block
via a single keep-mask.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.executor import LabeledPlan
from ..errors import TrainingError
from ..featurization.encoding import apply_mask
from ..featurization.mscn_features import MSCNEncoder, MSCNSample, MSCNTemplate
from ..nn import Adam, Tensor, clip_grad_norm, concat, mlp, stack
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.snapshot import SnapshotSet
from ..rng import rng_for
from .base import CostEstimator, TrainStats, snapshot_mapping_for, warm_start_remap
from .qppnet import from_log, to_log


class MSCN(CostEstimator):
    """Set-based cost model with a global plan-feature vector."""

    name = "mscn"

    def __init__(
        self,
        encoder: MSCNEncoder,
        hidden: int = 64,
        lr: float = 1e-3,
        epochs: int = 40,
        batch_size: int = 64,
        seed: int = 0,
        global_mask: Optional[np.ndarray] = None,
    ):
        self.encoder = encoder
        self.hidden = hidden
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.global_mask = global_mask
        #: Soft mask for the greedy reducer: zeroes global dims at
        #: encode time without rebuilding the network.
        self.zero_mask: Optional[np.ndarray] = None
        self._build()

    def _build(self) -> None:
        h = self.hidden
        global_dim = (
            int(self.global_mask.sum())
            if self.global_mask is not None
            else self.encoder.global_dim
        )
        self.table_net = mlp(self.encoder.table_dim, (h,), h, ("mscn-t", self.seed))
        self.join_net = mlp(self.encoder.join_dim, (h,), h, ("mscn-j", self.seed))
        self.pred_net = mlp(self.encoder.predicate_dim, (h,), h, ("mscn-p", self.seed))
        self.out_net = mlp(3 * h + global_dim, (h, h), 1, ("mscn-o", self.seed))

    def set_global_mask(
        self, mask: np.ndarray, fold_mean: Optional[np.ndarray] = None
    ) -> None:
        """Install a feature-reduction mask over the global block.

        With ``fold_mean`` (mean final-MLP input over the training set)
        the new ``out_net`` is warm-started: kept rows of its first
        layer are copied and the dropped — constant — dimensions'
        contributions fold into the bias, so retraining starts from the
        trained base function.  The set networks are untouched.
        """
        old_out = self.out_net if fold_mean is not None else None
        old_nets = (self.table_net, self.join_net, self.pred_net)
        old_mask = self.global_mask
        self.global_mask = np.asarray(mask)
        self._build()
        if old_out is None:
            return
        self.table_net, self.join_net, self.pred_net = old_nets
        # Handle re-masking an already-masked net (recall widens the
        # mask): indexed in the *full* (set outputs + global block)
        # input space, with the set-output prefix always kept.
        set_width = 3 * self.hidden

        def full_keep(keep_global: Optional[np.ndarray]) -> np.ndarray:
            global_keep = (
                np.asarray(keep_global, dtype=bool)
                if keep_global is not None
                else np.ones(self.encoder.global_dim, dtype=bool)
            )
            return np.concatenate(
                [np.ones(set_width, dtype=bool), global_keep]
            )

        warm_start_remap(
            old_out,
            self.out_net,
            full_keep(old_mask),
            full_keep(self.global_mask),
            fold_mean,
        )

    def warm_retrain(
        self,
        train: Sequence[LabeledPlan],
        masks: Optional[np.ndarray] = None,
        snapshot_set: Optional["SnapshotSet"] = None,
        epochs: Optional[int] = None,
    ) -> TrainStats:
        """Install a recalled global ``masks`` vector and refit briefly.

        Recall only re-includes dimensions, so the warm start is
        function-preserving (new first-layer rows start at zero); the
        fold mean is never consulted and passed as zeros.
        """
        if masks is not None:
            full_width = 3 * self.hidden + self.encoder.global_dim
            self.set_global_mask(
                np.asarray(masks, dtype=bool), fold_mean=np.zeros(full_width)
            )
        return super().warm_retrain(
            train, snapshot_set=snapshot_set, epochs=epochs
        )

    def parameters(self):
        params = []
        for net in (self.table_net, self.join_net, self.pred_net, self.out_net):
            params.extend(net.parameters())
        return params

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------
    # checkpoint serialization (repro.persist)
    # ------------------------------------------------------------------
    _NET_NAMES = ("table_net", "join_net", "pred_net", "out_net")

    def state_dict(self) -> Dict[str, object]:
        """Architecture config, global mask and the four nets' weights.

        The encoder is rebuilt from the benchmark catalog on restore
        (see :meth:`repro.models.qppnet.QPPNet.state_dict`).
        """
        return {
            "kind": "mscn",
            "config": {
                "hidden": self.hidden,
                "lr": self.lr,
                "epochs": self.epochs,
                "batch_size": self.batch_size,
                "seed": self.seed,
            },
            "global_mask": (
                None
                if self.global_mask is None
                else np.asarray(self.global_mask, dtype=bool)
            ),
            "nets": {
                name: getattr(self, name).state_dict()
                for name in self._NET_NAMES
            },
        }

    @classmethod
    def from_state(cls, state, encoder: MSCNEncoder) -> "MSCN":
        """Rebuild from :meth:`state_dict` output + a rebuilt encoder;
        restored weights are installed verbatim (bit-identical)."""
        config = dict(state.get("config", {}))
        mask = state.get("global_mask")
        model = cls(
            encoder,
            hidden=int(config.get("hidden", 64)),
            lr=float(config.get("lr", 1e-3)),
            epochs=int(config.get("epochs", 40)),
            batch_size=int(config.get("batch_size", 64)),
            seed=int(config.get("seed", 0)),
            global_mask=None if mask is None else np.asarray(mask, dtype=bool),
        )
        for name, arrays in dict(state.get("nets", {})).items():
            if name not in cls._NET_NAMES:
                raise TrainingError(f"unknown MSCN net {name!r} in state")
            getattr(model, name).load_state_dict(arrays)
        return model

    # ------------------------------------------------------------------
    def _encode(
        self, record: LabeledPlan, snapshot_set: Optional["SnapshotSet"]
    ) -> MSCNSample:
        mapping = snapshot_mapping_for(record, snapshot_set)
        sample = self.encoder.encode(record.plan, mapping)
        if self.zero_mask is not None:
            sample = MSCNSample(
                tables=sample.tables,
                joins=sample.joins,
                predicates=sample.predicates,
                plan_global=sample.plan_global * self.zero_mask,
            )
        if self.global_mask is not None:
            sample = MSCNSample(
                tables=sample.tables,
                joins=sample.joins,
                predicates=sample.predicates,
                plan_global=apply_mask(sample.plan_global, self.global_mask),
            )
        return sample

    def _pool(self, net, rows_list: List[np.ndarray]) -> Tensor:
        """Forward a ragged batch of sets and mean-pool per query."""
        sizes = [rows.shape[0] for rows in rows_list]
        nonempty = [rows for rows in rows_list if rows.shape[0] > 0]
        hidden: Optional[Tensor] = None
        if nonempty:
            stacked = Tensor(np.concatenate(nonempty, axis=0))
            hidden = net(stacked).relu()
        pooled: List[Tensor] = []
        offset = 0
        for size in sizes:
            if size == 0 or hidden is None:
                pooled.append(Tensor(np.zeros(self.hidden)))
            else:
                pooled.append(hidden[offset:offset + size, :].mean(axis=0))
                offset += size
        return stack(pooled, axis=0)

    def _forward(self, samples: Sequence[MSCNSample]) -> Tensor:
        tables = self._pool(self.table_net, [s.tables for s in samples])
        joins = self._pool(self.join_net, [s.joins for s in samples])
        preds = self._pool(self.pred_net, [s.predicates for s in samples])
        global_vec = Tensor(np.stack([s.plan_global for s in samples]))
        features = concat([tables, joins, preds, global_vec], axis=1)
        return self.out_net(features)

    # ------------------------------------------------------------------
    def fit(
        self,
        train: Sequence[LabeledPlan],
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> TrainStats:
        if not train:
            raise TrainingError("empty training set")
        start = time.perf_counter()
        samples = [self._encode(r, snapshot_set) for r in train]
        targets = np.array([to_log(r.latency_ms) for r in train])
        optimizer = Adam(self.parameters(), lr=self.lr)
        rng = rng_for("mscn-fit", self.seed)
        indices = np.arange(len(train))
        history: List[float] = []
        for _ in range(self.epochs):
            rng.shuffle(indices)
            epoch_loss, batches = 0.0, 0
            for lo in range(0, len(indices), self.batch_size):
                batch = indices[lo:lo + self.batch_size]
                out = self._forward([samples[i] for i in batch])
                diff = out.reshape(-1) - Tensor(targets[batch])
                loss = (diff * diff).mean()
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(self.parameters(), 5.0)
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            history.append(epoch_loss / max(batches, 1))
        return TrainStats(
            epochs=self.epochs,
            final_loss=history[-1] if history else float("nan"),
            train_seconds=time.perf_counter() - start,
            n_parameters=self.num_parameters(),
            loss_history=history,
        )

    def predict_many(
        self,
        labeled: Sequence[LabeledPlan],
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> np.ndarray:
        return self.predict_prepared(labeled, snapshot_set=snapshot_set)

    # ------------------------------------------------------------------
    # serving hooks
    # ------------------------------------------------------------------
    def prepare_one(
        self, record: LabeledPlan, snapshot_set: Optional["SnapshotSet"] = None
    ) -> MSCNSample:
        """The (masked) MSCN sample; plan-object independent, so safe to
        cache by plan fingerprint and share across requests."""
        return self._encode(record, snapshot_set)

    def prepare_template(
        self, record: LabeledPlan, snapshot_set: Optional["SnapshotSet"] = None
    ) -> MSCNTemplate:
        """Literal-independent skeleton sample, cacheable under
        ``template_fingerprint``.  Masks are applied per request in
        :meth:`prepare_from_template`, not baked into the template."""
        mapping = snapshot_mapping_for(record, snapshot_set)
        return self.encoder.encode_skeleton(record.plan, mapping)

    def prepare_from_template(
        self,
        record: LabeledPlan,
        template: MSCNTemplate,
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> MSCNSample:
        """Instantiate a cached *template* with this record's literals
        and apply the masks — bit-identical to :meth:`prepare_one`
        (the pooled global vector is recomputed with the scalar path's
        exact full-matrix mean)."""
        sample = self.encoder.encode_from_skeleton(template, record.plan)
        plan_global = sample.plan_global
        if self.zero_mask is not None:
            plan_global = plan_global * self.zero_mask
        if self.global_mask is not None:
            plan_global = apply_mask(plan_global, self.global_mask)
        return MSCNSample(
            tables=sample.tables,
            joins=sample.joins,
            predicates=sample.predicates,
            plan_global=plan_global,
        )

    def predict_prepared(
        self,
        labeled: Sequence[LabeledPlan],
        prepared: Optional[Sequence] = None,
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> np.ndarray:
        return self.predict_prepared_batch(
            labeled, prepared, snapshot_set=snapshot_set
        )

    def predict_prepared_batch(
        self,
        labeled: Sequence[LabeledPlan],
        prepared: Optional[Sequence] = None,
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> np.ndarray:
        """Fused forward over the flush: each set network and the final
        MLP run once per chunk via the fixed-block GEMM
        (``forward_batched``), so each sample's prediction is
        independent of its neighbours — scalar requests are the
        batch-size-1 case of the same code."""
        if not labeled:
            return np.zeros(0, dtype=np.float64)
        if prepared is None:
            prepared = [None] * len(labeled)
        samples = [
            self._encode(record, snapshot_set) if sample is None else sample
            for record, sample in zip(labeled, prepared, strict=True)
        ]
        out = np.zeros(len(labeled))
        step = 512
        for lo in range(0, len(labeled), step):
            chunk = samples[lo:lo + step]
            values = self._forward_numpy(chunk).reshape(-1)
            out[lo:lo + len(chunk)] = from_log(values)
        return out

    def _pool_numpy(self, net, rows_list: List[np.ndarray]) -> np.ndarray:
        """Inference-only mirror of :meth:`_pool` on raw arrays.

        Uses the fixed-block GEMM and a per-sample slice mean — both
        row/slice-local — so a sample's pooled vector is independent of
        the other samples fused into the call."""
        sizes = [rows.shape[0] for rows in rows_list]
        nonempty = [rows for rows in rows_list if rows.shape[0] > 0]
        hidden: Optional[np.ndarray] = None
        if nonempty:
            hidden = net.forward_batched(np.concatenate(nonempty, axis=0))
            hidden = hidden * (hidden > 0)
        pooled = np.zeros((len(sizes), self.hidden))
        offset = 0
        for index, size in enumerate(sizes):
            if size == 0 or hidden is None:
                continue
            pooled[index] = hidden[offset:offset + size].mean(axis=0)
            offset += size
        return pooled

    def _forward_numpy(self, samples: Sequence[MSCNSample]) -> np.ndarray:
        """No-autodiff forward for prediction: the serving hot path."""
        tables = self._pool_numpy(self.table_net, [s.tables for s in samples])
        joins = self._pool_numpy(self.join_net, [s.joins for s in samples])
        preds = self._pool_numpy(self.pred_net, [s.predicates for s in samples])
        global_vec = np.stack([s.plan_global for s in samples])
        features = np.concatenate([tables, joins, preds, global_vec], axis=1)
        return self.out_net.forward_batched(features)

    # ------------------------------------------------------------------
    def final_input_dataset(
        self,
        labeled: Sequence[LabeledPlan],
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> Tuple[np.ndarray, slice]:
        """Inputs to ``out_net`` as a matrix, plus the slice of columns
        holding the (unmasked) global operator-feature block — the
        dataset feature reduction runs on, with the pooled-set columns
        protected."""
        if self.global_mask is not None:
            raise TrainingError("collect the reduction dataset before masking")
        samples = [self._encode(r, snapshot_set) for r in labeled]
        tables = self._pool(self.table_net, [s.tables for s in samples]).numpy()
        joins = self._pool(self.join_net, [s.joins for s in samples]).numpy()
        preds = self._pool(self.pred_net, [s.predicates for s in samples]).numpy()
        global_rows = np.stack([s.plan_global for s in samples])
        matrix = np.concatenate([tables, joins, preds, global_rows], axis=1)
        return matrix, slice(3 * self.hidden, matrix.shape[1])

    def global_dataset(
        self,
        labeled: Sequence[LabeledPlan],
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> np.ndarray:
        """Unmasked global vectors — the dataset feature reduction scores."""
        mapping_cache: Dict[str, Optional[Dict]] = {}
        rows = []
        for record in labeled:
            if record.env_name not in mapping_cache:
                mapping_cache[record.env_name] = snapshot_mapping_for(
                    record, snapshot_set
                )
            sample = self.encoder.encode(record.plan, mapping_cache[record.env_name])
            rows.append(sample.plan_global)
        return np.stack(rows)
