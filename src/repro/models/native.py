"""Per-backend calibrated native-cost fallback estimator.

The generalization of the PGSQL baseline to a fleet of engine
families: latency ≈ ``slope`` × native optimizer cost + ``intercept``,
one estimator per backend.  The slope/intercept linear correction
follows brad's ``AthenaNativeCostModel``; FasCo ("Less is More")
motivates keeping this near-free model deployed as the fallback for
backends with no learned bundle — it answers in one vector op and
never needs featurization or snapshots.

Calibration is deliberately paranoid about labels: live feedback can
contain NaN/inf latencies (timeouts, clock bugs), and a single
non-finite pair must not poison the fit.  Only finite, non-negative
``(cost, latency)`` pairs participate; with no usable pairs the
current coefficients are kept.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from ..engine.executor import LabeledPlan
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.snapshot import SnapshotSet
from .base import CostEstimator, TrainStats


def finite_cost_pairs(
    train: Sequence[LabeledPlan],
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract the calibratable ``(cost, latency)`` pairs from *train*.

    Drops records whose optimizer cost or measured latency is NaN/inf
    or whose latency is negative; costs are floored at ``1e-9`` so
    degenerate zero-cost plans cannot divide a ratio by zero.  Returns
    two aligned float64 arrays (possibly empty).
    """
    costs = np.array(
        [record.plan.est_total_cost for record in train], dtype=np.float64
    )
    latencies = np.array(
        [record.latency_ms for record in train], dtype=np.float64
    )
    keep = np.isfinite(costs) & np.isfinite(latencies) & (latencies >= 0.0)
    return np.maximum(costs[keep], 1e-9), latencies[keep]


class NativeCostEstimator(CostEstimator):
    """Slope/intercept-corrected optimizer cost for one backend.

    ``predict`` is ``max(slope * est_total_cost + intercept, 0)`` in
    the backend's native cost units.  :meth:`fit` least-squares-fits
    the two coefficients over the finite training pairs, falling back
    to a median-ratio slope (intercept 0) when the costs are constant
    — the same robust estimate the single-scale PGSQL baseline uses.
    """

    name = "native_cost"

    def __init__(
        self,
        backend: str = "postgres",
        slope: float = 1.0,
        intercept: float = 0.0,
        calibrated: bool = True,
    ):
        self.backend = backend
        self.slope = float(slope)
        self.intercept = float(intercept)
        self.calibrated = calibrated

    def fit(
        self,
        train: Sequence[LabeledPlan],
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> TrainStats:
        """Least-squares (slope, intercept) over finite (cost, latency)
        pairs; keeps the current coefficients when nothing is usable."""
        start = time.perf_counter()
        if self.calibrated:
            costs, latencies = finite_cost_pairs(train)
            if costs.size >= 2 and float(np.ptp(costs)) > 0.0:
                cost_mean = float(costs.mean())
                latency_mean = float(latencies.mean())
                centered = costs - cost_mean
                slope = float((centered * (latencies - latency_mean)).sum())
                slope /= float((centered * centered).sum())
                self.slope = slope
                self.intercept = latency_mean - slope * cost_mean
            elif costs.size:
                self.slope = float(np.median(latencies / costs))
                self.intercept = 0.0
        return TrainStats(
            epochs=0,
            final_loss=float("nan"),
            train_seconds=time.perf_counter() - start,
            n_parameters=2 if self.calibrated else 0,
        )

    def predict_many(
        self,
        labeled: Sequence[LabeledPlan],
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> np.ndarray:
        if not labeled:
            return np.zeros(0, dtype=np.float64)
        costs = np.array(
            [record.plan.est_total_cost for record in labeled],
            dtype=np.float64,
        )
        return np.maximum(costs * self.slope + self.intercept, 0.0)

    # ------------------------------------------------------------------
    # checkpoint serialization (repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The whole model: backend tag plus the two coefficients."""
        return {
            "kind": "native_cost",
            "backend": self.backend,
            "slope": float(self.slope),
            "intercept": float(self.intercept),
            "calibrated": self.calibrated,
        }

    @classmethod
    def from_state(cls, state) -> "NativeCostEstimator":
        """Rebuild from :meth:`state_dict` output."""
        return cls(
            backend=str(state.get("backend", "postgres")),
            slope=float(state.get("slope", 1.0)),
            intercept=float(state.get("intercept", 0.0)),
            calibrated=bool(state.get("calibrated", True)),
        )
