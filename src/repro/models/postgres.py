"""The PostgreSQL cost-model baseline (paper's "PGSQL" rows).

Predicts a query's cost as the optimizer's estimated total cost of the
plan root.  PG costs are abstract units, not milliseconds, and the
cardinality estimates behind them are off on skewed data — which is
precisely why the paper's Table IV shows three-to-six-digit q-errors
for this baseline while its Pearson correlation stays modest but
positive.  A calibrated variant (single multiplicative scale fitted on
the training split) is included for ablations.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..engine.executor import LabeledPlan
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.snapshot import SnapshotSet
from .base import CostEstimator, TrainStats


class PostgresCostEstimator(CostEstimator):
    """Raw optimizer cost as the latency prediction."""

    name = "postgres"

    def __init__(self, calibrated: bool = False):
        self.calibrated = calibrated
        self._scale = 1.0

    def fit(
        self,
        train: Sequence[LabeledPlan],
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> TrainStats:
        start = time.perf_counter()
        if self.calibrated and train:
            ratios = [
                record.latency_ms / max(record.plan.est_total_cost, 1e-9)
                for record in train
            ]
            self._scale = float(np.median(ratios))
        return TrainStats(
            epochs=0,
            final_loss=float("nan"),
            train_seconds=time.perf_counter() - start,
            n_parameters=1 if self.calibrated else 0,
        )

    def predict_many(
        self,
        labeled: Sequence[LabeledPlan],
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> np.ndarray:
        costs = np.array([record.plan.est_total_cost for record in labeled])
        return costs * self._scale

    # ------------------------------------------------------------------
    # checkpoint serialization (repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The whole model: the calibration flag and fitted scale."""
        return {
            "kind": "postgres",
            "calibrated": self.calibrated,
            "scale": float(self._scale),
        }

    @classmethod
    def from_state(cls, state) -> "PostgresCostEstimator":
        """Rebuild from :meth:`state_dict` output."""
        model = cls(calibrated=bool(state.get("calibrated", False)))
        model._scale = float(state.get("scale", 1.0))
        return model
