"""The PostgreSQL cost-model baseline (paper's "PGSQL" rows).

Predicts a query's cost as the optimizer's estimated total cost of the
plan root.  PG costs are abstract units, not milliseconds, and the
cardinality estimates behind them are off on skewed data — which is
precisely why the paper's Table IV shows three-to-six-digit q-errors
for this baseline while its Pearson correlation stays modest but
positive.  A calibrated variant (single multiplicative scale fitted on
the training split) is included for ablations.

Structurally this is the intercept-free special case of the
per-backend :class:`~repro.models.native.NativeCostEstimator` — the
subclassing makes the routing layer's "is this a native fallback?"
check cover both.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..engine.executor import LabeledPlan
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.snapshot import SnapshotSet
from .base import TrainStats
from .native import NativeCostEstimator, finite_cost_pairs


class PostgresCostEstimator(NativeCostEstimator):
    """Raw optimizer cost as the latency prediction."""

    name = "postgres"

    def __init__(self, calibrated: bool = False):
        super().__init__(
            backend="postgres", slope=1.0, intercept=0.0, calibrated=calibrated
        )

    @property
    def _scale(self) -> float:
        """Legacy alias: the single multiplicative calibration scale."""
        return self.slope

    @_scale.setter
    def _scale(self, value: float) -> None:
        self.slope = float(value)

    def fit(
        self,
        train: Sequence[LabeledPlan],
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> TrainStats:
        """Median latency/cost ratio over the *finite* training pairs.

        Live feedback can carry NaN/inf latencies (timeouts, clock
        bugs); those pairs are dropped before the median so a single
        poisoned label cannot corrupt ``_scale`` for every subsequent
        prediction.  With no usable pairs the scale is left unchanged.
        """
        start = time.perf_counter()
        if self.calibrated:
            costs, latencies = finite_cost_pairs(train)
            if costs.size:
                self.slope = float(np.median(latencies / costs))
        return TrainStats(
            epochs=0,
            final_loss=float("nan"),
            train_seconds=time.perf_counter() - start,
            n_parameters=1 if self.calibrated else 0,
        )

    # ------------------------------------------------------------------
    # checkpoint serialization (repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The whole model: the calibration flag and fitted scale."""
        return {
            "kind": "postgres",
            "calibrated": self.calibrated,
            "scale": float(self.slope),
        }

    @classmethod
    def from_state(cls, state) -> "PostgresCostEstimator":
        """Rebuild from :meth:`state_dict` output."""
        model = cls(calibrated=bool(state.get("calibrated", False)))
        model.slope = float(state.get("scale", 1.0))
        return model
