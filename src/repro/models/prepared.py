"""Prepared-plan exchange format and the fused batch forward.

This is the vectorized spine of the serving hot path.  A
:class:`PreparedPlan` is a plan featurized *and grouped*: nodes are
bucketed by ``(height, operator)`` with one feature matrix per bucket,
so inference never assembles per-node dicts or stacks Python lists of
rows.  :func:`fused_forward` merges any number of prepared plans and
runs one unit forward per ``(height, operator)`` group across the whole
flush — zero per-item dispatch, which is what lets the MicroBatcher's
coalescing actually pay off.

Bit-identity contract: every matmul goes through
:meth:`repro.nn.layers.Module.forward_batched` (fixed-block GEMM, see
:mod:`repro.nn.batched`), so a row's result is independent of how many
other rows share the call.  A plan therefore predicts identically
whether fused alone or with a thousand neighbours — the scalar and
batched serving paths are the *same* code at different batch sizes,
and the equivalence suite asserts exact equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..engine.operators import OperatorType, PlanNode
from ..featurization.encoding import apply_mask

#: Child-data slots per node (QPPNet's binary-plan assumption).
MAX_CHILDREN = 2


@dataclass
class PreparedPlan:
    """One plan, featurized and grouped for the fused forward.

    Parallel lists, one entry per ``(height, operator)`` group, sorted
    by ``(height, operator value)``:

    - ``levels``: the group's node height (leaves are 0)
    - ``ops``: the group's operator type
    - ``feats``: ``(n_i, masked_dim)`` feature matrix, rows in walk order
    - ``nodes``: ``(n_i,)`` pre-order walk indices of the group's nodes
    - ``children``: ``(n_i, MAX_CHILDREN)`` walk indices of each node's
      children, ``-1`` for absent slots

    Walk indices (not node ids) are the exchange format, so a prepared
    plan cached for one plan object replays onto any plan sharing its
    fingerprint.  The form round-trips through the ``repro.persist``
    codec (kind ``"qppnet_plan"``).
    """

    levels: List[int]
    ops: List[OperatorType]
    feats: List[np.ndarray]
    nodes: List[np.ndarray]
    children: List[np.ndarray]
    n_nodes: int


def plan_topology(
    plan: PlanNode,
) -> Tuple[List[Tuple[int, OperatorType, np.ndarray, np.ndarray]], int]:
    """Group *plan*'s nodes by ``(height, operator)``.

    Returns ``(groups, n_nodes)`` where each group is ``(level, op,
    node_indices, child_indices)`` over pre-order walk indices, sorted
    by ``(level, op value)`` so iterating groups in order always
    computes children before parents.
    """
    heights: Dict[int, int] = {}

    def height_of(node: PlanNode) -> int:
        h = 1 + max((height_of(c) for c in node.children), default=-1)
        heights[id(node)] = h
        return h

    height_of(plan)
    walk = list(plan.walk())
    index = {id(node): i for i, node in enumerate(walk)}
    groups: Dict[Tuple[int, str], Tuple[OperatorType, List[int], List[List[int]]]] = {}
    for i, node in enumerate(walk):
        key = (heights[id(node)], node.op.value)
        op, nodes, children = groups.setdefault(key, (node.op, [], []))
        nodes.append(i)
        children.append(
            [
                index[id(node.children[slot])]
                if slot < len(node.children)
                else -1
                for slot in range(MAX_CHILDREN)
            ]
        )
    result = []
    for (level, _), (op, nodes, children) in sorted(groups.items()):
        result.append(
            (
                level,
                op,
                np.asarray(nodes, dtype=np.int64),
                np.asarray(children, dtype=np.int64).reshape(
                    len(nodes), MAX_CHILDREN
                ),
            )
        )
    return result, len(walk)


def prepared_from_matrix(
    plan: PlanNode,
    matrix: np.ndarray,
    masks: Optional[Mapping[OperatorType, np.ndarray]] = None,
) -> PreparedPlan:
    """Build a :class:`PreparedPlan` from a full ``(n_nodes, dim)``
    feature matrix (pre-order rows), applying per-operator keep-masks
    group-wise — identical values to masking each row individually."""
    groups, n_nodes = plan_topology(plan)
    levels: List[int] = []
    ops: List[OperatorType] = []
    feats: List[np.ndarray] = []
    nodes: List[np.ndarray] = []
    children: List[np.ndarray] = []
    for level, op, node_idx, child_idx in groups:
        levels.append(level)
        ops.append(op)
        feats.append(
            apply_mask(matrix[node_idx], masks.get(op) if masks else None)
        )
        nodes.append(node_idx)
        children.append(child_idx)
    return PreparedPlan(levels, ops, feats, nodes, children, n_nodes)


def prepared_from_rows(
    plan: PlanNode, rows: Sequence[np.ndarray]
) -> PreparedPlan:
    """Regroup legacy per-node feature rows (pre-order, already masked)
    into the grouped form — the upgrade path for prepared values
    restored from pre-``PreparedPlan`` checkpoints."""
    groups, n_nodes = plan_topology(plan)
    levels: List[int] = []
    ops: List[OperatorType] = []
    feats: List[np.ndarray] = []
    nodes: List[np.ndarray] = []
    children: List[np.ndarray] = []
    for level, op, node_idx, child_idx in groups:
        levels.append(level)
        ops.append(op)
        feats.append(
            np.stack([np.asarray(rows[i], dtype=np.float64) for i in node_idx])
        )
        nodes.append(node_idx)
        children.append(child_idx)
    return PreparedPlan(levels, ops, feats, nodes, children, n_nodes)


def fused_forward(
    prepared_seq: Sequence[PreparedPlan],
    units: Mapping[OperatorType, object],
    data_size: int,
) -> np.ndarray:
    """One forward pass over *all* plans in the flush.

    Groups are merged across plans by ``(height, operator)`` and each
    merged group makes a single :meth:`forward_batched` call; node
    outputs land in one shared ``(total_nodes + 1, 1 + data_size)``
    buffer whose final all-zeros row is the target of every absent
    child slot (so leaf child-data gathers read zeros, exactly like the
    per-node zero vector the scalar encoder used).  Returns the root
    log-latency per plan, in input order.
    """
    if not prepared_seq:
        # Empty flush: the contract is an empty *float64* array, same
        # dtype as the populated path, so downstream concatenation and
        # the persist codec never see a dtype flip.
        return np.zeros(0, dtype=np.float64)
    counts = np.array([p.n_nodes for p in prepared_seq], dtype=np.int64)
    offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
    total = int(offsets[-1])
    merged: Dict[
        Tuple[int, str],
        Tuple[OperatorType, List[np.ndarray], List[np.ndarray], List[np.ndarray]],
    ] = {}
    for prepared, off in zip(prepared_seq, offsets[:-1], strict=True):
        for level, op, feats, nodes, children in zip(
            prepared.levels,
            prepared.ops,
            prepared.feats,
            prepared.nodes,
            prepared.children,
            strict=True,
        ):
            key = (level, op.value)
            _, feat_parts, node_parts, child_parts = merged.setdefault(
                key, (op, [], [], [])
            )
            feat_parts.append(feats)
            node_parts.append(nodes + off)
            # Absent children (-1) point at the sentinel zeros row.
            child_parts.append(np.where(children >= 0, children + off, total))
    out = np.zeros((total + 1, 1 + data_size))
    for _key, (op, feat_parts, node_parts, child_parts) in sorted(
        merged.items()
    ):
        feats = (
            feat_parts[0]
            if len(feat_parts) == 1
            else np.concatenate(feat_parts, axis=0)
        )
        nodes = np.concatenate(node_parts)
        children = np.concatenate(child_parts, axis=0)
        child_data = out[children.reshape(-1), 1:].reshape(
            nodes.shape[0], MAX_CHILDREN * data_size
        )
        out[nodes] = units[op].forward_batched(
            np.concatenate([feats, child_data], axis=1)
        )
    return out[offsets[:-1], 0]
