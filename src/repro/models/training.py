"""Training utilities: splits, timing, evaluation of estimators."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.executor import LabeledPlan
from ..nn.loss import numpy_q_error
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.snapshot import SnapshotSet
from ..rng import rng_for
from .base import CostEstimator


def train_test_split(
    labeled: Sequence[LabeledPlan],
    test_fraction: float = 0.2,
    seed: int = 0,
) -> Tuple[List[LabeledPlan], List[LabeledPlan]]:
    """The paper's 80/20 split, shuffled deterministically."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    indices = np.arange(len(labeled))
    rng_for("split", seed).shuffle(indices)
    cut = int(round(len(labeled) * (1.0 - test_fraction)))
    train = [labeled[i] for i in indices[:cut]]
    test = [labeled[i] for i in indices[cut:]]
    return train, test


@dataclass
class EvaluationReport:
    """Accuracy + timing, matching the paper's Table IV columns."""

    pearson: float
    mean_q_error: float
    median_q_error: float
    q_error_percentiles: Dict[int, float]
    train_seconds: float
    inference_seconds: float
    n_test: int

    def row(self) -> Dict[str, float]:
        return {
            "pearson": self.pearson,
            "mean": self.mean_q_error,
            "time": self.train_seconds,
        }


def pearson_correlation(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Paper Equation 3."""
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    sa, sp = actual.std(), predicted.std()
    if sa < 1e-15 or sp < 1e-15:
        return 0.0
    cov = ((actual - actual.mean()) * (predicted - predicted.mean())).mean()
    return float(cov / (sa * sp))


def evaluate_estimator(
    estimator: CostEstimator,
    test: Sequence[LabeledPlan],
    snapshot_set: Optional["SnapshotSet"] = None,
    train_seconds: float = 0.0,
) -> EvaluationReport:
    """Score an estimator on held-out labelled plans."""
    start = time.perf_counter()
    predictions = estimator.predict_many(test, snapshot_set=snapshot_set)
    inference_seconds = time.perf_counter() - start
    actual = np.array([record.latency_ms for record in test])
    q_errors = numpy_q_error(predictions, actual)
    percentiles = {
        p: float(np.percentile(q_errors, p)) for p in (25, 50, 75, 90, 95, 99)
    }
    return EvaluationReport(
        pearson=pearson_correlation(actual, predictions),
        mean_q_error=float(q_errors.mean()),
        median_q_error=percentiles[50],
        q_error_percentiles=percentiles,
        train_seconds=train_seconds,
        inference_seconds=inference_seconds,
        n_test=len(test),
    )
