"""Common interface for learned (and baseline) cost estimators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..engine.executor import LabeledPlan
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.snapshot import SnapshotSet


@dataclass
class TrainStats:
    """What :meth:`CostEstimator.fit` reports (paper's "time" column)."""

    epochs: int = 0
    final_loss: float = float("nan")
    train_seconds: float = 0.0
    n_parameters: int = 0
    loss_history: List[float] = field(default_factory=list)


class CostEstimator:
    """Interface: fit on labelled plans, predict latencies in ms.

    ``snapshot_set`` is the QCFE hook: when provided, implementations
    append the per-environment feature-snapshot coefficients to their
    operator encodings (QCFE(qpp), QCFE(mscn)); when None they reduce
    to the base estimators the paper compares against.
    """

    name: str = "estimator"

    def fit(
        self,
        train: Sequence[LabeledPlan],
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> TrainStats:  # pragma: no cover - abstract
        raise NotImplementedError

    def predict_many(
        self,
        labeled: Sequence[LabeledPlan],
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def predict(
        self, record: LabeledPlan, snapshot_set: Optional["SnapshotSet"] = None
    ) -> float:
        return float(self.predict_many([record], snapshot_set=snapshot_set)[0])

    # ------------------------------------------------------------------
    # serving hooks (repro.serving)
    # ------------------------------------------------------------------
    def prepare_one(
        self, record: LabeledPlan, snapshot_set: Optional["SnapshotSet"] = None
    ):
        """Cacheable per-record encoding for the serving layer.

        Returns an opaque object that :meth:`predict_prepared` accepts in
        place of re-encoding *record*.  It must be reusable across plan
        objects that share a fingerprint (same structure and estimates),
        which is what lets a :class:`repro.serving.FeatureCache` skip
        featurization on repeated plans.  The default returns None
        ("no cacheable form"), which predict_prepared treats as
        encode-on-demand.
        """
        return None

    def predict_prepared(
        self,
        labeled: Sequence[LabeledPlan],
        prepared: Optional[Sequence] = None,
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> np.ndarray:
        """Batched prediction reusing :meth:`prepare_one` encodings.

        ``prepared[i]`` is the cached encoding of ``labeled[i]`` or None,
        in which case the record is encoded on the fly (with
        ``snapshot_set``).  The default ignores ``prepared`` entirely.
        """
        return self.predict_many(labeled, snapshot_set=snapshot_set)


def snapshot_mapping_for(
    record: LabeledPlan, snapshot_set: Optional["SnapshotSet"]
) -> Optional[Dict]:
    """The encoder snapshot mapping for a record's environment."""
    if snapshot_set is None:
        return None
    return snapshot_set.normalized(record.env_name)
