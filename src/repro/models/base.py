"""Common interface for learned (and baseline) cost estimators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..engine.executor import LabeledPlan
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.snapshot import SnapshotSet


@dataclass
class TrainStats:
    """What :meth:`CostEstimator.fit` reports (paper's "time" column)."""

    epochs: int = 0
    final_loss: float = float("nan")
    train_seconds: float = 0.0
    n_parameters: int = 0
    loss_history: List[float] = field(default_factory=list)


class CostEstimator:
    """Interface: fit on labelled plans, predict latencies in ms.

    ``snapshot_set`` is the QCFE hook: when provided, implementations
    append the per-environment feature-snapshot coefficients to their
    operator encodings (QCFE(qpp), QCFE(mscn)); when None they reduce
    to the base estimators the paper compares against.
    """

    name: str = "estimator"

    def fit(
        self,
        train: Sequence[LabeledPlan],
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> TrainStats:  # pragma: no cover - abstract
        raise NotImplementedError

    def predict_many(
        self,
        labeled: Sequence[LabeledPlan],
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def predict(
        self, record: LabeledPlan, snapshot_set: Optional["SnapshotSet"] = None
    ) -> float:
        return float(self.predict_many([record], snapshot_set=snapshot_set)[0])

    # ------------------------------------------------------------------
    # serving hooks (repro.serving)
    # ------------------------------------------------------------------
    def prepare_one(
        self, record: LabeledPlan, snapshot_set: Optional["SnapshotSet"] = None
    ):
        """Cacheable per-record encoding for the serving layer.

        Returns an opaque object that :meth:`predict_prepared` accepts in
        place of re-encoding *record*.  It must be reusable across plan
        objects that share a fingerprint (same structure and estimates),
        which is what lets a :class:`repro.serving.FeatureCache` skip
        featurization on repeated plans.  The default returns None
        ("no cacheable form"), which predict_prepared treats as
        encode-on-demand.
        """
        return None

    def predict_prepared(
        self,
        labeled: Sequence[LabeledPlan],
        prepared: Optional[Sequence] = None,
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> np.ndarray:
        """Batched prediction reusing :meth:`prepare_one` encodings.

        ``prepared[i]`` is the cached encoding of ``labeled[i]`` or None,
        in which case the record is encoded on the fly (with
        ``snapshot_set``).  The default ignores ``prepared`` entirely.

        Empty-flush contract: a zero-length ``labeled`` returns an
        empty **float64** array — never raises, never a default-dtype
        array — so batcher flushes that raced to empty stay cheap and
        dtype-stable.
        """
        if not labeled:
            return np.zeros(0, dtype=np.float64)
        return self.predict_many(labeled, snapshot_set=snapshot_set)

    def predict_prepared_batch(
        self,
        labeled: Sequence[LabeledPlan],
        prepared: Optional[Sequence] = None,
        snapshot_set: Optional["SnapshotSet"] = None,
    ) -> np.ndarray:
        """Fused whole-flush prediction: the MicroBatcher entry point.

        Implementations that support it make one vectorized forward
        pass over all records (grouped, zero per-item dispatch) and
        must return results *bit-identical* to calling
        :meth:`predict_prepared` per record — the batched path may
        never perturb a prediction.  The default simply delegates.
        """
        return self.predict_prepared(labeled, prepared, snapshot_set=snapshot_set)

    def prepare_template(
        self, record: LabeledPlan, snapshot_set: Optional["SnapshotSet"] = None
    ):
        """Literal-independent featurized skeleton for template memoization.

        Cached under
        :func:`~repro.featurization.fingerprint.template_fingerprint`,
        so every instantiation of one statement template shares it;
        :meth:`prepare_from_template` patches the literal-derived
        dimensions per request.  The default returns None ("no
        template form"), which the serving layer treats as
        prepare-from-scratch.
        """
        return None

    def prepare_from_template(
        self,
        record: LabeledPlan,
        template,
        snapshot_set: Optional["SnapshotSet"] = None,
    ):
        """Instantiate a cached template with *record*'s literals.

        Must return exactly what :meth:`prepare_one` would — template
        memoization is a cost optimization, never an approximation.
        The default ignores the template and prepares from scratch.
        """
        return self.prepare_one(record, snapshot_set=snapshot_set)

    def warm_retrain(
        self,
        train: Sequence[LabeledPlan],
        masks=None,
        snapshot_set: Optional["SnapshotSet"] = None,
        epochs: Optional[int] = None,
    ) -> TrainStats:
        """Refit from the current weights, optionally widening masks.

        The online-adaptation entry point (see
        :mod:`repro.serving.adaptation`): when workload drift recalls
        pruned dimensions, the refit should *extend* the deployed model
        rather than retrain it from scratch.  ``masks`` are recalled
        keep-masks (implementation-specific shape); recall only *adds*
        dimensions, whose new weights start at zero — function
        preserving — so a short ``epochs`` budget suffices.  The
        default ignores ``masks`` and simply refits.
        """
        previous = getattr(self, "epochs", None)
        if epochs is not None and previous is not None:
            self.epochs = epochs
        try:
            return self.fit(train, snapshot_set=snapshot_set)
        finally:
            if epochs is not None and previous is not None:
                self.epochs = previous


def snapshot_mapping_for(
    record: LabeledPlan, snapshot_set: Optional["SnapshotSet"]
) -> Optional[Dict]:
    """The encoder snapshot mapping for a record's environment."""
    if snapshot_set is None:
        return None
    return snapshot_set.normalized(record.env_name)


def warm_start_remap(
    old: "object",
    new: "object",
    old_keep: np.ndarray,
    new_keep: np.ndarray,
    fold_mean: np.ndarray,
) -> None:
    """Re-mask an MLP's input space function-preservingly, in place.

    ``old``/``new`` are Sequential MLPs whose first module is a linear
    layer (weight shape: input rows x hidden); ``old_keep``/``new_keep``
    are boolean keep-vectors over the *full* input space describing
    which rows each network's first layer actually has.  Rows kept in
    both are copied; rows dropped from the old net fold their
    contribution — ``fold_mean[dim] * weight_row``, sound when the
    dimension is constant over the data — into the bias; newly added
    rows start at zero (also function-preserving).  Deeper layers are
    copied verbatim.

    Shared by QPPNet (per-operator units, child-data suffix always
    kept) and MSCN (final MLP, set-output prefix always kept): the
    subtle index arithmetic lives once, here.
    """
    old_rows = np.nonzero(np.asarray(old_keep, dtype=bool))[0]
    new_rows = np.nonzero(np.asarray(new_keep, dtype=bool))[0]
    old_pos = {int(d): i for i, d in enumerate(old_rows)}
    new_set = set(int(d) for d in new_rows)
    old_first = old.modules[0]
    new_first = new.modules[0]
    weight = np.zeros((len(new_rows), old_first.weight.data.shape[1]))
    for row, dim in enumerate(new_rows):
        source = old_pos.get(int(dim))
        if source is not None:
            weight[row] = old_first.weight.data[source]
    bias = old_first.bias.data.copy()
    for dim, source in old_pos.items():
        if dim not in new_set:
            bias = bias + fold_mean[dim] * old_first.weight.data[source]
    new_first.weight.data = weight
    new_first.bias.data = bias
    for old_layer, new_layer in zip(old.modules[1:], new.modules[1:], strict=True):
        new_layer.load_state_dict(old_layer.state_dict())
