"""repro.backends — per-engine cost semantics for multi-backend serving.

QCFE's feature-snapshot engineering is engine-agnostic; this package
makes the serving stack agnostic too.  A :class:`BackendProfile`
captures one engine family's optimizer contract (cost units, relative
cardinality behavior, featurization config, native-cost calibration);
the module-level registry maps backend tags on incoming requests to
profiles; and :func:`get_backend` raises the typed
:class:`~repro.errors.UnknownBackendError` the routing layer in
:class:`repro.serving.CostService` surfaces for unknown tags.

Two profiles ship built in: ``postgres`` (the reference family, and
the default every legacy checkpoint restores as) and ``aurora`` (a
second family with rescaled cost units and warped cardinalities,
modeled on brad's per-backend featurization variants over one shared
zero-shot core).
"""

from .profile import (
    AURORA,
    DEFAULT_BACKEND,
    POSTGRES,
    BackendProfile,
    backend_names,
    get_backend,
    register_backend,
)

__all__ = [
    "AURORA",
    "DEFAULT_BACKEND",
    "POSTGRES",
    "BackendProfile",
    "backend_names",
    "get_backend",
    "register_backend",
]
