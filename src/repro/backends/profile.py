"""Backend profiles: per-engine cost semantics over one estimation core.

A :class:`BackendProfile` describes everything the serving stack needs
to know about one engine family's optimizer output: what unit its
costs are denominated in, how its cardinality estimates behave
relative to the reference engine, which featurization knobs a learned
bundle for it should train with, and a default slope/intercept
calibration that maps native optimizer cost to milliseconds when no
learned bundle is deployed (the
:class:`~repro.models.native.NativeCostEstimator` fallback).

The design follows brad's ``cost_model/encoder/specific_models``
layout — aurora/athena/redshift featurization variants over one shared
``ZeroShotModel`` core — and FasCo's argument for keeping a cheap
calibrated native-cost model per backend.  Profiles are the *static*
half of multi-backend serving; the dynamic half (which estimator
answers a request tagged with a backend) lives in
:meth:`repro.serving.CostService.estimate`'s routing step.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Tuple

from ..engine.operators import PlanNode
from ..errors import UnknownBackendError

#: The reference engine family every checkpoint written before the
#: backend-aware schema implicitly belongs to.
DEFAULT_BACKEND = "postgres"


@dataclass(frozen=True)
class BackendProfile:
    """One engine family's cost-unit, cardinality and calibration contract.

    ``cost_scale`` and ``cardinality_exponent`` describe how the
    backend's optimizer output relates to the reference (PostgreSQL)
    engine: native cost ≈ ``cost_scale`` × (PG cost of the same plan
    over rows warped by ``rows ** cardinality_exponent``).  They drive
    :meth:`native_plan`, which synthesizes what this backend's
    optimizer would have emitted for a reference plan — the hook the
    mixed-fleet scenario and tests use to produce cross-engine traffic
    without a second plan enumerator.

    ``calibration`` is the default ``(slope, intercept)`` linear map
    from native cost units to milliseconds, seeding the per-backend
    :class:`~repro.models.native.NativeCostEstimator` fallback before
    any feedback-driven refit.

    ``featurization`` holds per-backend featurization config consumed
    when training a learned bundle for this backend (recorded in bundle
    metadata so a restored bundle knows how it was featurized).
    """

    name: str
    cost_unit: str
    description: str = ""
    cost_scale: float = 1.0
    cardinality_exponent: float = 1.0
    calibration: Tuple[float, float] = (1.0, 0.0)
    featurization: Mapping[str, object] = field(default_factory=dict)

    def to_native_cost(self, pg_cost: float) -> float:
        """Map a reference-engine (PG-unit) cost into this backend's units."""
        return float(pg_cost) * self.cost_scale

    def warp_rows(self, est_rows: float) -> float:
        """This backend's cardinality estimate for a reference estimate."""
        return float(max(est_rows, 0.0)) ** self.cardinality_exponent

    def native_plan(self, plan: PlanNode) -> PlanNode:
        """Synthesize this backend's optimizer output for a reference plan.

        Returns a deep-copied tree whose ``est_rows`` are warped by
        ``cardinality_exponent`` and whose costs are rescaled into this
        backend's units; structure, predicates and ground-truth fields
        are untouched.  The identity profile returns an equal-valued
        copy, so reference-backend traffic is unchanged.
        """
        children = [self.native_plan(child) for child in plan.children]
        return replace(
            plan,
            children=children,
            predicates=list(plan.predicates),
            est_rows=self.warp_rows(plan.est_rows),
            est_startup_cost=self.to_native_cost(plan.est_startup_cost),
            est_total_cost=self.to_native_cost(plan.est_total_cost),
            resource_counts=dict(plan.resource_counts),
        )

    def native_estimator(self):
        """A fresh per-backend calibrated native-cost fallback estimator."""
        # Local import: models sits beside backends in the layer stack
        # and imports nothing from it; importing lazily here keeps the
        # profile definition importable from anywhere.
        from ..models.native import NativeCostEstimator

        slope, intercept = self.calibration
        return NativeCostEstimator(
            backend=self.name, slope=slope, intercept=intercept
        )


_REGISTRY: Dict[str, BackendProfile] = {}


def register_backend(profile: BackendProfile) -> BackendProfile:
    """Install *profile* under ``profile.name`` (idempotent overwrite)."""
    _REGISTRY[profile.name] = profile
    return profile


def get_backend(name: str) -> BackendProfile:
    """Look up a profile by name.

    Raises :class:`~repro.errors.UnknownBackendError` for names no
    profile is registered under — the typed error the routing layer
    surfaces for requests tagged with an unknown backend.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise UnknownBackendError(
            f"unknown backend {name!r} (registered: {known})"
        ) from None


def backend_names() -> Tuple[str, ...]:
    """Registered profile names, sorted."""
    return tuple(sorted(_REGISTRY))


#: The reference engine family: PG cost units pass through unchanged
#: and the native fallback starts uncalibrated (slope 1, intercept 0).
POSTGRES = register_backend(
    BackendProfile(
        name=DEFAULT_BACKEND,
        cost_unit="pg_page_fetches",
        description=(
            "Reference engine family: abstract page-fetch cost units, "
            "cardinalities as estimated."
        ),
        featurization={"cost_log": False, "snapshot_source": "template"},
    )
)

#: A second engine family in the brad mold: provisioned replicas whose
#: optimizer reports IO-blended units two orders of magnitude smaller
#: than PG's and whose cardinality model runs slightly hot on large
#: intermediates (exponent > 1), like aurora's over one shared core.
AURORA = register_backend(
    BackendProfile(
        name="aurora",
        cost_unit="blended_io_units",
        description=(
            "Provisioned second engine family: IO-blended cost units "
            "(~0.025x PG scale), optimistic-hot cardinalities."
        ),
        cost_scale=0.025,
        cardinality_exponent=1.08,
        calibration=(40.0, 0.15),
        featurization={"cost_log": True, "snapshot_source": "template"},
    )
)
