"""The job-light workload: 70 star-join queries over IMDB.

job-light (Kipf et al.) joins ``title`` with one to four fact tables on
``movie_id = title.id`` and filters on a small set of categorical /
year columns, always computing ``COUNT(*)``.  The original 70 queries
are tied to the real IMDB snapshot, so we regenerate a fixed set of 70
with the same structural distribution (join-count histogram, predicate
columns and operators), deterministically seeded.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..catalog.imdb import IMDB_FACT_TABLES, IMDB_PREDICATE_COLUMNS
from ..catalog.schema import Catalog
from ..catalog.statistics import Predicate
from ..rng import rng_for
from ..sql.ast import ColumnRef, JoinCondition, SelectQuery
from ..sql.templates import QueryTemplate, TemplateParam

#: Distribution of the number of joined fact tables in job-light
#: (queries have 1-4 joins; most have 1-2).
_JOIN_COUNT_WEIGHTS = {1: 0.30, 2: 0.34, 3: 0.24, 4: 0.12}

JOBLIGHT_QUERY_COUNT = 70


def _sample_predicate(
    catalog: Catalog, table: str, rng: np.random.Generator
) -> Predicate:
    column = str(rng.choice(IMDB_PREDICATE_COLUMNS[table]))
    col = catalog.column(table, column)
    op = str(rng.choice(["=", "<", ">"], p=[0.6, 0.2, 0.2]))
    lo, hi = int(col.min_value), int(col.max_value)
    value = int(rng.integers(lo, max(hi, lo + 1)))
    return Predicate(table, column, op, value)


def joblight_queries(
    catalog: Catalog, count: int = JOBLIGHT_QUERY_COUNT, seed: int = 42
) -> List[Tuple[str, SelectQuery]]:
    """Generate the fixed job-light query set: (name, query) pairs."""
    rng = rng_for("joblight", seed)
    join_counts = list(_JOIN_COUNT_WEIGHTS)
    weights = np.array([_JOIN_COUNT_WEIGHTS[k] for k in join_counts])
    weights = weights / weights.sum()
    queries: List[Tuple[str, SelectQuery]] = []
    for index in range(count):
        n_joins = int(rng.choice(join_counts, p=weights))
        facts = list(rng.choice(IMDB_FACT_TABLES, size=n_joins, replace=False))
        tables = ["title"] + [str(f) for f in facts]
        joins = [
            JoinCondition(ColumnRef(str(fact), "movie_id"), ColumnRef("title", "id"))
            for fact in facts
        ]
        predicates: List[Predicate] = []
        # title predicates: 1-2, like the original workload.
        for _ in range(int(rng.integers(1, 3))):
            predicates.append(_sample_predicate(catalog, "title", rng))
        # each fact table gets a predicate with probability 0.5.
        for fact in facts:
            if rng.random() < 0.5:
                predicates.append(_sample_predicate(catalog, str(fact), rng))
        query = SelectQuery(
            tables=tables, predicates=predicates, joins=joins, aggregate="count"
        )
        queries.append((f"jl{index + 1}", query))
    return queries


def joblight_templates(catalog: Catalog, seed: int = 42) -> List[QueryTemplate]:
    """Template (text) forms of the job-light queries, for Algorithm 1.

    Each generated query is lifted back into a template by replacing
    its literals with placeholders bound to the filtered columns.
    """
    templates: List[QueryTemplate] = []
    for name, query in joblight_queries(catalog, seed=seed):
        params: List[TemplateParam] = []
        text = query.sql()
        for position, pred in enumerate(query.predicates):
            placeholder = f"v{position}"
            literal = str(pred.value)
            # Replace the first occurrence of this predicate's literal.
            needle = f"{pred.table}.{pred.column} {pred.op} {literal}"
            replacement = f"{pred.table}.{pred.column} {pred.op} :{placeholder}"
            text = text.replace(needle, replacement, 1)
            params.append(TemplateParam(placeholder, pred.table, pred.column))
        templates.append(QueryTemplate(name=name, text=text, params=tuple(params)))
    return templates
