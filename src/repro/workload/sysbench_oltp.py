"""The Sysbench ``oltp_read_only`` workload.

Reproduces the five read query shapes of ``oltp_read_only.lua``: point
selects, 100-row range selects, and range sum / order / "distinct"
variants (DISTINCT is expressed as GROUP BY, which plans identically).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..catalog.schema import Catalog
from ..catalog.statistics import Predicate
from ..rng import rng_for
from ..sql.ast import ColumnRef, OrderByItem, SelectQuery

_RANGE_SIZE = 100  # sysbench's default --range-size

#: Relative frequency of each query shape in one oltp_read_only
#: transaction: 10 point selects + 1 of each range variant.
_SHAPE_WEIGHTS = {
    "point_select": 10,
    "simple_range": 1,
    "sum_range": 1,
    "order_range": 1,
    "distinct_range": 1,
}


def _make_query(shape: str, table: str, id_lo: int) -> SelectQuery:
    id_hi = id_lo + _RANGE_SIZE - 1
    between = Predicate(table, "id", "between", (id_lo, id_hi))
    if shape == "point_select":
        return SelectQuery(
            tables=[table],
            predicates=[Predicate(table, "id", "=", id_lo)],
            projections=["c"],
        )
    if shape == "simple_range":
        return SelectQuery(tables=[table], predicates=[between], projections=["c"])
    if shape == "sum_range":
        return SelectQuery(tables=[table], predicates=[between], aggregate="sum(k)")
    if shape == "order_range":
        return SelectQuery(
            tables=[table],
            predicates=[between],
            projections=["c"],
            order_by=[OrderByItem(ColumnRef(table, "c"))],
        )
    if shape == "distinct_range":
        return SelectQuery(
            tables=[table],
            predicates=[between],
            group_by=[ColumnRef(table, "c")],
            aggregate="count",
            order_by=[OrderByItem(ColumnRef(table, "c"))],
        )
    raise ValueError(f"unknown sysbench shape {shape!r}")


def sysbench_queries(
    catalog: Catalog, count: int, seed: int = 7
) -> List[Tuple[str, SelectQuery]]:
    """Generate *count* queries with sysbench's transaction mix."""
    table = catalog.table_names[0]
    max_id = int(catalog.table(table).column("id").max_value)
    rng = rng_for("sysbench", seed)
    shapes = list(_SHAPE_WEIGHTS)
    weights = np.array([_SHAPE_WEIGHTS[s] for s in shapes], dtype=float)
    weights = weights / weights.sum()
    queries: List[Tuple[str, SelectQuery]] = []
    for _ in range(count):
        shape = str(rng.choice(shapes, p=weights))
        id_lo = int(rng.integers(1, max(max_id - _RANGE_SIZE, 2)))
        queries.append((shape, _make_query(shape, table, id_lo)))
    return queries


def sysbench_template_texts(table: str = "sbtest1") -> List[Tuple[str, str]]:
    """Raw template texts for Algorithm 1's keyword parsing."""
    return [
        ("point_select", f"SELECT c FROM {table} WHERE {table}.id = :id"),
        (
            "simple_range",
            f"SELECT c FROM {table} WHERE {table}.id BETWEEN :id_lo AND :id_hi",
        ),
        (
            "sum_range",
            f"SELECT SUM(k) FROM {table} WHERE {table}.id BETWEEN :id_lo AND :id_hi",
        ),
        (
            "order_range",
            f"SELECT c FROM {table} WHERE {table}.id BETWEEN :id_lo AND :id_hi "
            f"ORDER BY {table}.c",
        ),
        (
            "distinct_range",
            f"SELECT COUNT(*) FROM {table} WHERE {table}.id BETWEEN :id_lo AND "
            f":id_hi GROUP BY {table}.c ORDER BY {table}.c",
        ),
    ]
