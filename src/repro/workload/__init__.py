"""Workload substrate: TPC-H, job-light and Sysbench query generators."""

from .collect import (
    BENCHMARK_NAMES,
    PAPER_ITERATIONS,
    Benchmark,
    collect_labeled_plans,
    get_benchmark,
    standard_environments,
)
from .joblight import JOBLIGHT_QUERY_COUNT, joblight_queries, joblight_templates
from .sysbench_oltp import sysbench_queries, sysbench_template_texts
from .tpch_queries import tpch_templates

__all__ = [
    "BENCHMARK_NAMES",
    "PAPER_ITERATIONS",
    "Benchmark",
    "collect_labeled_plans",
    "get_benchmark",
    "standard_environments",
    "tpch_templates",
    "joblight_queries",
    "joblight_templates",
    "JOBLIGHT_QUERY_COUNT",
    "sysbench_queries",
    "sysbench_template_texts",
]
