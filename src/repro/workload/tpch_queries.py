"""The 22 TPC-H query templates, restated in the engine's SQL subset.

The engine supports conjunctive SPJ queries with GROUP BY / ORDER BY /
LIMIT, so each template keeps the original's *plan shape* — the tables
it touches, its join graph, predicates, grouping and ordering — while
dropping subqueries and arithmetic select lists that do not affect
operator structure.  Placeholders (``:name``) bind to column domains
via the data abstract, exactly like qgen's substitution parameters.
"""

from __future__ import annotations

from typing import List

from ..sql.templates import QueryTemplate, TemplateParam


def _t(name: str, text: str, *params: TemplateParam) -> QueryTemplate:
    return QueryTemplate(name=name, text=text, params=tuple(params))


def tpch_templates() -> List[QueryTemplate]:
    """Build the 22 parameterised templates (q1..q22)."""
    p = TemplateParam
    return [
        _t(
            "q1",
            "SELECT lineitem.l_returnflag, COUNT(*) FROM lineitem "
            "WHERE lineitem.l_shipdate <= :d1 "
            "GROUP BY lineitem.l_returnflag, lineitem.l_linestatus "
            "ORDER BY lineitem.l_returnflag",
            p("d1", "lineitem", "l_shipdate"),
        ),
        _t(
            "q2",
            "SELECT supplier.s_acctbal, supplier.s_name FROM part "
            "JOIN partsupp ON partsupp.ps_partkey = part.p_partkey "
            "JOIN supplier ON supplier.s_suppkey = partsupp.ps_suppkey "
            "JOIN nation ON nation.n_nationkey = supplier.s_nationkey "
            "JOIN region ON region.r_regionkey = nation.n_regionkey "
            "WHERE part.p_size = :size AND region.r_name = :rname "
            "ORDER BY supplier.s_acctbal DESC LIMIT 100",
            p("size", "part", "p_size"),
            p("rname", "region", "r_name"),
        ),
        _t(
            "q3",
            "SELECT lineitem.l_orderkey, COUNT(*) FROM customer "
            "JOIN orders ON orders.o_custkey = customer.c_custkey "
            "JOIN lineitem ON lineitem.l_orderkey = orders.o_orderkey "
            "WHERE customer.c_mktsegment = :seg AND orders.o_orderdate < :d1 "
            "AND lineitem.l_shipdate > :d2 "
            "GROUP BY lineitem.l_orderkey, orders.o_orderdate "
            "ORDER BY orders.o_orderdate LIMIT 10",
            p("seg", "customer", "c_mktsegment"),
            p("d1", "orders", "o_orderdate"),
            p("d2", "lineitem", "l_shipdate"),
        ),
        _t(
            "q4",
            "SELECT orders.o_orderpriority, COUNT(*) FROM orders "
            "JOIN lineitem ON lineitem.l_orderkey = orders.o_orderkey "
            "WHERE orders.o_orderdate >= :d1 AND lineitem.l_commitdate < :d2 "
            "GROUP BY orders.o_orderpriority ORDER BY orders.o_orderpriority",
            p("d1", "orders", "o_orderdate"),
            p("d2", "lineitem", "l_commitdate"),
        ),
        _t(
            "q5",
            "SELECT nation.n_name, COUNT(*) FROM customer "
            "JOIN orders ON orders.o_custkey = customer.c_custkey "
            "JOIN lineitem ON lineitem.l_orderkey = orders.o_orderkey "
            "JOIN supplier ON supplier.s_suppkey = lineitem.l_suppkey "
            "JOIN nation ON nation.n_nationkey = supplier.s_nationkey "
            "JOIN region ON region.r_regionkey = nation.n_regionkey "
            "WHERE region.r_name = :rname AND orders.o_orderdate >= :d1 "
            "GROUP BY nation.n_name ORDER BY nation.n_name",
            p("rname", "region", "r_name"),
            p("d1", "orders", "o_orderdate"),
        ),
        _t(
            "q6",
            "SELECT SUM(l_extendedprice) FROM lineitem "
            "WHERE lineitem.l_shipdate BETWEEN :d_lo AND :d_hi "
            "AND lineitem.l_discount BETWEEN :disc_lo AND :disc_hi "
            "AND lineitem.l_quantity < :qty",
            p("d_lo", "lineitem", "l_shipdate"),
            p("d_hi", "lineitem", "l_shipdate"),
            p("disc_lo", "lineitem", "l_discount"),
            p("disc_hi", "lineitem", "l_discount"),
            p("qty", "lineitem", "l_quantity"),
        ),
        _t(
            "q7",
            "SELECT nation.n_name, COUNT(*) FROM supplier "
            "JOIN lineitem ON lineitem.l_suppkey = supplier.s_suppkey "
            "JOIN orders ON orders.o_orderkey = lineitem.l_orderkey "
            "JOIN nation ON nation.n_nationkey = supplier.s_nationkey "
            "WHERE lineitem.l_shipdate BETWEEN :d_lo AND :d_hi "
            "GROUP BY nation.n_name ORDER BY nation.n_name",
            p("d_lo", "lineitem", "l_shipdate"),
            p("d_hi", "lineitem", "l_shipdate"),
        ),
        _t(
            "q8",
            "SELECT orders.o_orderdate, COUNT(*) FROM part "
            "JOIN lineitem ON lineitem.l_partkey = part.p_partkey "
            "JOIN orders ON orders.o_orderkey = lineitem.l_orderkey "
            "JOIN customer ON customer.c_custkey = orders.o_custkey "
            "JOIN nation ON nation.n_nationkey = customer.c_nationkey "
            "WHERE part.p_type = :ptype AND orders.o_orderdate >= :d1 "
            "GROUP BY orders.o_orderdate ORDER BY orders.o_orderdate",
            p("ptype", "part", "p_type"),
            p("d1", "orders", "o_orderdate"),
        ),
        _t(
            "q9",
            "SELECT nation.n_name, COUNT(*) FROM part "
            "JOIN partsupp ON partsupp.ps_partkey = part.p_partkey "
            "JOIN supplier ON supplier.s_suppkey = partsupp.ps_suppkey "
            "JOIN lineitem ON lineitem.l_partkey = part.p_partkey "
            "JOIN nation ON nation.n_nationkey = supplier.s_nationkey "
            "WHERE part.p_name LIKE :pname "
            "GROUP BY nation.n_name ORDER BY nation.n_name DESC",
            p("pname", "part", "p_name"),
        ),
        _t(
            "q10",
            "SELECT customer.c_custkey, COUNT(*) FROM customer "
            "JOIN orders ON orders.o_custkey = customer.c_custkey "
            "JOIN lineitem ON lineitem.l_orderkey = orders.o_orderkey "
            "JOIN nation ON nation.n_nationkey = customer.c_nationkey "
            "WHERE orders.o_orderdate >= :d1 AND lineitem.l_returnflag = :flag "
            "GROUP BY customer.c_custkey ORDER BY customer.c_custkey LIMIT 20",
            p("d1", "orders", "o_orderdate"),
            p("flag", "lineitem", "l_returnflag"),
        ),
        _t(
            "q11",
            "SELECT partsupp.ps_partkey, COUNT(*) FROM partsupp "
            "JOIN supplier ON supplier.s_suppkey = partsupp.ps_suppkey "
            "JOIN nation ON nation.n_nationkey = supplier.s_nationkey "
            "WHERE nation.n_name = :nname "
            "GROUP BY partsupp.ps_partkey ORDER BY partsupp.ps_partkey LIMIT 50",
            p("nname", "nation", "n_name"),
        ),
        _t(
            "q12",
            "SELECT lineitem.l_shipmode, COUNT(*) FROM orders "
            "JOIN lineitem ON lineitem.l_orderkey = orders.o_orderkey "
            "WHERE lineitem.l_shipmode IN (:m1, :m2) "
            "AND lineitem.l_receiptdate >= :d1 "
            "GROUP BY lineitem.l_shipmode ORDER BY lineitem.l_shipmode",
            p("m1", "lineitem", "l_shipmode"),
            p("m2", "lineitem", "l_shipmode"),
            p("d1", "lineitem", "l_receiptdate"),
        ),
        _t(
            "q13",
            "SELECT customer.c_custkey, COUNT(*) FROM customer "
            "JOIN orders ON orders.o_custkey = customer.c_custkey "
            "WHERE orders.o_totalprice > :price "
            "GROUP BY customer.c_custkey ORDER BY customer.c_custkey LIMIT 100",
            p("price", "orders", "o_totalprice"),
        ),
        _t(
            "q14",
            "SELECT COUNT(*) FROM lineitem "
            "JOIN part ON part.p_partkey = lineitem.l_partkey "
            "WHERE lineitem.l_shipdate BETWEEN :d_lo AND :d_hi",
            p("d_lo", "lineitem", "l_shipdate"),
            p("d_hi", "lineitem", "l_shipdate"),
        ),
        _t(
            "q15",
            "SELECT supplier.s_suppkey, COUNT(*) FROM supplier "
            "JOIN lineitem ON lineitem.l_suppkey = supplier.s_suppkey "
            "WHERE lineitem.l_shipdate >= :d1 "
            "GROUP BY supplier.s_suppkey ORDER BY supplier.s_suppkey DESC LIMIT 1",
            p("d1", "lineitem", "l_shipdate"),
        ),
        _t(
            "q16",
            "SELECT part.p_brand, COUNT(*) FROM partsupp "
            "JOIN part ON part.p_partkey = partsupp.ps_partkey "
            "WHERE part.p_brand <> :brand AND part.p_size IN (:s1, :s2, :s3) "
            "GROUP BY part.p_brand, part.p_type, part.p_size "
            "ORDER BY part.p_brand",
            p("brand", "part", "p_brand"),
            p("s1", "part", "p_size"),
            p("s2", "part", "p_size"),
            p("s3", "part", "p_size"),
        ),
        _t(
            "q17",
            "SELECT AVG(l_quantity) FROM lineitem "
            "JOIN part ON part.p_partkey = lineitem.l_partkey "
            "WHERE part.p_brand = :brand AND part.p_container = :container",
            p("brand", "part", "p_brand"),
            p("container", "part", "p_container"),
        ),
        _t(
            "q18",
            "SELECT orders.o_orderkey, COUNT(*) FROM customer "
            "JOIN orders ON orders.o_custkey = customer.c_custkey "
            "JOIN lineitem ON lineitem.l_orderkey = orders.o_orderkey "
            "WHERE orders.o_totalprice > :price "
            "GROUP BY orders.o_orderkey, orders.o_totalprice "
            "ORDER BY orders.o_totalprice DESC LIMIT 100",
            p("price", "orders", "o_totalprice"),
        ),
        _t(
            "q19",
            "SELECT SUM(l_extendedprice) FROM lineitem "
            "JOIN part ON part.p_partkey = lineitem.l_partkey "
            "WHERE part.p_brand = :brand "
            "AND lineitem.l_quantity BETWEEN :q_lo AND :q_hi "
            "AND part.p_size BETWEEN :s_lo AND :s_hi",
            p("brand", "part", "p_brand"),
            p("q_lo", "lineitem", "l_quantity"),
            p("q_hi", "lineitem", "l_quantity"),
            p("s_lo", "part", "p_size"),
            p("s_hi", "part", "p_size"),
        ),
        _t(
            "q20",
            "SELECT supplier.s_name FROM supplier "
            "JOIN nation ON nation.n_nationkey = supplier.s_nationkey "
            "JOIN partsupp ON partsupp.ps_suppkey = supplier.s_suppkey "
            "JOIN part ON part.p_partkey = partsupp.ps_partkey "
            "WHERE part.p_name LIKE :pname AND nation.n_name = :nname "
            "ORDER BY supplier.s_name",
            p("pname", "part", "p_name"),
            p("nname", "nation", "n_name"),
        ),
        _t(
            "q21",
            "SELECT supplier.s_name, COUNT(*) FROM supplier "
            "JOIN lineitem ON lineitem.l_suppkey = supplier.s_suppkey "
            "JOIN orders ON orders.o_orderkey = lineitem.l_orderkey "
            "JOIN nation ON nation.n_nationkey = supplier.s_nationkey "
            "WHERE orders.o_orderstatus = :status AND nation.n_name = :nname "
            "GROUP BY supplier.s_name ORDER BY supplier.s_name LIMIT 100",
            p("status", "orders", "o_orderstatus"),
            p("nname", "nation", "n_name"),
        ),
        _t(
            "q22",
            "SELECT customer.c_nationkey, COUNT(*) FROM customer "
            "JOIN orders ON orders.o_custkey = customer.c_custkey "
            "WHERE customer.c_acctbal > :bal "
            "GROUP BY customer.c_nationkey ORDER BY customer.c_nationkey",
            p("bal", "customer", "c_acctbal"),
        ),
    ]
