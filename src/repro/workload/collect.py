"""Benchmark bundles and labelled-query collection.

A :class:`Benchmark` packages everything one evaluation target needs:
catalog, statistics, data abstract, the original query templates and a
query generator.  :func:`collect_labeled_plans` reproduces the paper's
workload configuration: execute generated queries under each of the
random knob environments and keep (plan, environment, latency) labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..catalog.imdb import imdb_catalog
from ..catalog.schema import Catalog
from ..catalog.statistics import CatalogStatistics, DataAbstract
from ..catalog.sysbench import sysbench_catalog
from ..catalog.tpch import tpch_catalog
from ..engine.environment import DatabaseEnvironment, random_environments
from ..engine.executor import ExecutionSimulator, LabeledPlan
from ..errors import ReproError
from ..rng import rng_for
from ..sql.ast import SelectQuery
from .joblight import joblight_templates
from .sysbench_oltp import sysbench_queries, sysbench_template_texts
from .tpch_queries import tpch_templates

BENCHMARK_NAMES = ("tpch", "joblight", "sysbench")

#: Training iterations per benchmark from Section V-B.
PAPER_ITERATIONS = {"tpch": 400, "joblight": 800, "sysbench": 100}


@dataclass
class Benchmark:
    """One evaluation target: catalog + statistics + workload."""

    name: str
    catalog: Catalog
    stats: CatalogStatistics
    abstract: DataAbstract
    template_texts: List[Tuple[str, str]]
    _generator: Callable[[int, int], List[Tuple[str, SelectQuery]]]

    def generate_queries(self, count: int, seed: int = 0) -> List[Tuple[str, SelectQuery]]:
        """Generate *count* (template-name, query) pairs."""
        return self._generator(count, seed)


def get_benchmark(name: str) -> Benchmark:
    """Factory for the paper's three benchmarks."""
    if name == "tpch":
        catalog = tpch_catalog()
        stats = CatalogStatistics(catalog, seed_key="tpch")
        abstract = DataAbstract(catalog)
        templates = tpch_templates()

        def generate(count: int, seed: int) -> List[Tuple[str, SelectQuery]]:
            rng = rng_for("tpch-workload", seed)
            out: List[Tuple[str, SelectQuery]] = []
            for index in range(count):
                template = templates[index % len(templates)]
                out.append(
                    (template.name, template.instantiate(catalog, abstract, rng))
                )
            return out

        return Benchmark(
            name="tpch",
            catalog=catalog,
            stats=stats,
            abstract=abstract,
            template_texts=[(t.name, t.text) for t in templates],
            _generator=generate,
        )
    if name == "joblight":
        catalog = imdb_catalog()
        stats = CatalogStatistics(catalog, seed_key="imdb")
        abstract = DataAbstract(catalog)
        templates = joblight_templates(catalog)

        def generate(count: int, seed: int) -> List[Tuple[str, SelectQuery]]:
            rng = rng_for("joblight-workload", seed)
            out: List[Tuple[str, SelectQuery]] = []
            for index in range(count):
                template = templates[index % len(templates)]
                out.append(
                    (template.name, template.instantiate(catalog, abstract, rng))
                )
            return out

        return Benchmark(
            name="joblight",
            catalog=catalog,
            stats=stats,
            abstract=abstract,
            template_texts=[(t.name, t.text) for t in templates],
            _generator=generate,
        )
    if name == "sysbench":
        catalog = sysbench_catalog()
        stats = CatalogStatistics(catalog, seed_key="sysbench")
        abstract = DataAbstract(catalog)

        def generate(count: int, seed: int) -> List[Tuple[str, SelectQuery]]:
            return sysbench_queries(catalog, count, seed=seed)

        return Benchmark(
            name="sysbench",
            catalog=catalog,
            stats=stats,
            abstract=abstract,
            template_texts=sysbench_template_texts(),
            _generator=generate,
        )
    raise ReproError(f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}")


def collect_labeled_plans(
    benchmark: Benchmark,
    environments: Sequence[DatabaseEnvironment],
    total: int,
    seed: int = 0,
    noise_sigma: Optional[float] = None,
    keep: Optional[Callable[[str], bool]] = None,
    pool_factor: int = 8,
) -> List[LabeledPlan]:
    """Collect *total* labelled plans spread evenly across environments.

    Mirrors the paper's collection protocol: the same workload
    generator is run under every knob configuration and the labels are
    pooled; each record remembers its environment name so the feature
    snapshot can be looked up per environment.

    With *keep*, only templates whose name it accepts are executed:
    the generator is oversampled by *pool_factor* before filtering
    (how the drift fixtures carve a benchmark into pre/post-drift
    shapes).
    """
    if not environments:
        raise ReproError("need at least one environment")
    per_env = max(1, total // len(environments))
    labeled: List[LabeledPlan] = []
    for env_index, env in enumerate(environments):
        kwargs = {} if noise_sigma is None else {"noise_sigma": noise_sigma}
        simulator = ExecutionSimulator(
            benchmark.catalog, benchmark.stats, env, **kwargs
        )
        if keep is None:
            queries = benchmark.generate_queries(per_env, seed=seed + env_index)
        else:
            pool = benchmark.generate_queries(
                per_env * pool_factor, seed=seed + env_index
            )
            queries = [(n, q) for n, q in pool if keep(n)][:per_env]
        for template_name, query in queries:
            result = simulator.run_query(query)
            labeled.append(
                LabeledPlan(
                    plan=result.plan,
                    latency_ms=result.latency_ms,
                    env_name=env.name,
                    query_sql=query.sql(),
                    template=template_name,
                )
            )
        if len(labeled) >= total:
            break
    return labeled[:total]


def interleave_by_environment(records: Sequence[LabeledPlan]) -> List[LabeledPlan]:
    """Round-robin records across environments: realistic concurrent
    traffic, and an oldest/newest split of the result covers every
    environment on both sides."""
    by_env: dict = {}
    for record in records:
        by_env.setdefault(record.env_name, []).append(record)
    queues = list(by_env.values())
    out: List[LabeledPlan] = []
    index = 0
    while any(queues):
        queue = queues[index % len(queues)]
        if queue:
            out.append(queue.pop(0))
        index += 1
    return out


def standard_environments(count: int = 20, seed: int = 0) -> List[DatabaseEnvironment]:
    """The paper's pool of 20 random knob configurations."""
    return random_environments(count, seed=seed)
