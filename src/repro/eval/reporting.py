"""ASCII rendering of experiment results in the paper's table shapes."""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Sequence, Tuple, Union

from .experiments import (
    ModelRow,
    ReductionCounts,
    ReferenceCountRow,
    TemplateScaleRow,
    TransferRow,
)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a padded ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths, strict=True)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_serving_report(
    throughput: Sequence[Tuple[str, float, float]],
    stages: Sequence[Tuple[str, int, float, float]],
    caches: Sequence[Tuple[str, int, int, float]],
    adaptation: Sequence[Tuple[str, object]] = (),
    persist: Sequence[Tuple[str, object]] = (),
) -> str:
    """Serving metrics in the repo's table style.

    ``throughput`` rows are (mode, plans/sec, mean ms/plan); ``stages``
    rows are (stage, calls, total seconds, mean ms) as produced by
    :meth:`repro.serving.ServiceStats.stage_rows`; ``caches`` rows are
    (cache, hits, misses, hit rate); ``adaptation`` rows are
    (counter, value) as produced by
    :meth:`repro.serving.AdaptationStats.rows`; ``persist`` rows are
    (counter, value) warm-boot/restore counters.
    """
    sections = []
    if throughput:
        sections.append(
            format_table(
                ["mode", "plans/sec", "mean ms/plan"],
                [
                    (mode, f"{rate:.1f}", f"{mean_ms:.3f}")
                    for mode, rate, mean_ms in throughput
                ],
            )
        )
    if stages:
        sections.append(
            format_table(
                ["stage", "calls", "total s", "mean ms"],
                [
                    (stage, count, f"{total:.3f}", f"{mean_ms:.3f}")
                    for stage, count, total, mean_ms in stages
                ],
            )
        )
    if caches:
        sections.append(
            format_table(
                ["cache", "hits", "misses", "hit rate"],
                [
                    (name, hits, misses, f"{rate:.1%}")
                    for name, hits, misses, rate in caches
                ],
            )
        )
    if adaptation:
        sections.append(
            format_table(["adaptation", "value"], list(adaptation))
        )
    if persist:
        sections.append(format_table(["persist", "value"], list(persist)))
    return "\n\n".join(sections)


def render_persist_report(
    checkpoints: Sequence[Tuple[str, int, int, str]],
    counters: Dict[str, object],
) -> str:
    """Checkpoint/restore state in the repo's table style.

    ``checkpoints`` rows are (file, seq, bytes, schema) — typically
    built from :func:`repro.persist.list_checkpoints` +
    :func:`repro.persist.read_manifest`; ``counters`` maps
    checkpointer/restore counters (writes, skipped_clean, errors,
    bundles/snapshots restored) to values.
    """
    sections = []
    if checkpoints:
        sections.append(
            format_table(
                ["checkpoint", "seq", "bytes", "schema"], list(checkpoints)
            )
        )
    if counters:
        sections.append(
            format_table(
                ["persist", "value"],
                [(key, value) for key, value in sorted(counters.items())],
            )
        )
    return "\n\n".join(sections)


def render_cluster_report(
    shard_rows: Sequence[Tuple[str, str, int, int, int, int]],
    totals: Dict[str, int],
) -> str:
    """The sharded tier's health/routing report in the repo's table
    style.

    ``shard_rows`` are (shard, status, routed, failures, shed, peak
    in-flight) as produced by :meth:`repro.cluster.ClusterService.report`;
    ``totals`` maps cluster-level counters (reroutes, exhausted,
    ejections) to their values.
    """
    sections = [
        format_table(
            ["shard", "status", "routed", "failures", "shed", "peak inflight"],
            list(shard_rows),
        )
    ]
    if totals:
        sections.append(
            format_table(
                ["cluster", "value"],
                [(key, value) for key, value in sorted(totals.items())],
            )
        )
    return "\n\n".join(sections)


def _waterfall_rows(
    nodes: Sequence[Dict], depth: int = 0, rows: List[Tuple] = None
) -> List[Tuple]:
    """Flatten a :func:`repro.obs.span_tree` forest into indented
    (span, duration, status, annotations) table rows."""
    if rows is None:
        rows = []
    for node in nodes:
        annotations = {
            key: value
            for key, value in node.get("annotations", {}).items()
            if key not in ("links",)  # link lists are too wide for a cell
        }
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(annotations.items()))
        rows.append(
            (
                "  " * depth + str(node.get("name", "?")),
                f"{node.get('duration_ms', 0.0):.3f}",
                node.get("status", "?"),
                rendered,
            )
        )
        _waterfall_rows(node.get("children", []), depth + 1, rows)
    return rows


def render_obs_report(
    tracer=None,
    events=None,
    traces: int = 3,
    slow: int = 5,
) -> str:
    """The observability report: trace waterfalls, the slow-query log
    and the structured event history, in the repo's table style.

    *tracer* is a :class:`repro.obs.Tracer` (or None to skip the trace
    sections); *events* an :class:`repro.obs.EventLog` (or None).
    ``traces`` bounds how many retained traces render as waterfalls
    (newest first), ``slow`` how many slow-log entries list.
    """
    from ..obs import span_tree

    sections: List[str] = []
    if tracer is not None:
        for trace in reversed(tracer.traces()[-traces:]):
            rows = _waterfall_rows(span_tree(trace["spans"]))
            sections.append(
                f"trace {trace['trace_id']} "
                f"(sampled: {trace['sampled_by']}, "
                f"{trace['duration_ms']:.3f} ms)\n"
                + format_table(
                    ["span", "ms", "status", "annotations"], rows
                )
            )
        entries = tracer.slow_queries()[:slow]
        if entries:
            sections.append(
                "slow-query log (slowest first)\n"
                + format_table(
                    ["trace", "root", "ms", "status", "fingerprint"],
                    [
                        (
                            entry["trace_id"],
                            entry["root"],
                            f"{entry['duration_ms']:.3f}",
                            entry["status"],
                            str(entry.get("fingerprint"))[:40],
                        )
                        for entry in entries
                    ],
                )
            )
    if events is not None and len(events):
        sections.append(
            "events\n"
            + format_table(
                ["type", "unix ts", "fields"],
                [
                    (
                        event.type,
                        f"{event.unix_ts:.3f}",
                        ", ".join(
                            f"{k}={v}" for k, v in sorted(event.data.items())
                        ),
                    )
                    for event in events.events()
                ],
            )
        )
    return "\n\n".join(sections) if sections else "(no observability data)"


def load_bench_trajectory(directory: Union[str, pathlib.Path]) -> List[Dict]:
    """Every ``BENCH_*.json`` perf-trajectory envelope under
    *directory* (see :mod:`repro.bench.runner`), scenario-sorted."""
    results = [
        json.loads(path.read_text())
        for path in sorted(pathlib.Path(directory).glob("BENCH_*.json"))
    ]
    return sorted(results, key=lambda r: str(r.get("scenario", "")))


def render_bench_trajectory(
    results: Union[Sequence[Dict], str, pathlib.Path]
) -> str:
    """Markdown table over perf-trajectory results.

    *results* is a list of ``BENCH_*.json`` envelopes, or a directory
    to load them from.  Missing metrics render as ``-`` so partial or
    older-schema files degrade readably instead of raising.
    """
    if isinstance(results, (str, pathlib.Path)):
        results = load_bench_trajectory(results)

    def dig(mapping: object, *keys: str) -> object:
        for key in keys:
            if not isinstance(mapping, dict) or key not in mapping:
                return None
            mapping = mapping[key]
        return mapping

    def fmt(value: object, spec: str = "{:.2f}") -> str:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return "-"
        return spec.format(int(value) if spec == "{:d}" else value)

    header = (
        "| scenario | reqs | p50 ms | p95 ms | p99 ms | max ms | req/s "
        "| cache hit | errors | sha | mode |"
    )
    divider = "|" + " --- |" * 11
    lines = [header, divider]
    for result in results:
        metrics = result.get("metrics", {})
        lines.append(
            "| {scenario} | {reqs} | {p50} | {p95} | {p99} | {max} "
            "| {rps} | {hit} | {errors} | {sha} | {mode} |".format(
                scenario=result.get("scenario", "?"),
                reqs=fmt(dig(metrics, "completed"), "{:d}"),
                p50=fmt(dig(metrics, "latency_ms", "p50"), "{:.3f}"),
                p95=fmt(dig(metrics, "latency_ms", "p95"), "{:.3f}"),
                p99=fmt(dig(metrics, "latency_ms", "p99"), "{:.3f}"),
                max=fmt(dig(metrics, "latency_ms", "max"), "{:.3f}"),
                rps=fmt(dig(metrics, "throughput_rps"), "{:.1f}"),
                hit=fmt(
                    dig(metrics, "counters", "feature_cache", "hit_rate"),
                    "{:.1%}",
                ),
                errors=fmt(dig(metrics, "errors"), "{:d}"),
                sha=result.get("git_sha", "-"),
                mode="quick" if result.get("quick") else "full",
            )
        )
    return "\n".join(lines)


def render_figure1(result: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for benchmark, per_env in result.items():
        values = list(per_env.values())
        spread = max(values) / max(min(values), 1e-9)
        for env_name, mean_ms in per_env.items():
            rows.append((benchmark, env_name, f"{mean_ms:.2f}", f"{spread:.2f}x"))
    return format_table(["benchmark", "environment", "avg cost (ms)", "spread"], rows)


def render_table4(rows: List[ModelRow]) -> str:
    data = [
        (
            row.benchmark,
            row.model,
            row.scale,
            f"{row.pearson:.3f}",
            f"{row.mean_q_error:.3f}",
            f"{row.train_seconds:.2f}",
        )
        for row in rows
    ]
    return format_table(
        ["dataset", "model", "scale", "pearson", "mean q-error", "time (s)"], data
    )


def render_figure5(boxes: Dict[Tuple[str, str, int], Dict[str, float]]) -> str:
    data = [
        (
            benchmark,
            model,
            scale,
            f"{box['q25']:.3f}",
            f"{box['q50']:.3f}",
            f"{box['q75']:.3f}",
        )
        for (benchmark, model, scale), box in sorted(boxes.items())
    ]
    return format_table(["dataset", "model", "scale", "q25", "q50", "q75"], data)


def render_figure6(results) -> str:
    data = [
        (benchmark, variant, f"{summary.mean:.3f}", f"{summary.median:.3f}",
         f"{summary.percentiles[90]:.3f}")
        for (benchmark, variant), summary in sorted(results.items())
    ]
    return format_table(
        ["dataset", "variant", "mean q-error", "median", "q90"], data
    )


def render_figure7(counts: List[ReductionCounts]) -> str:
    rows = []
    for entry in counts:
        for op, kept in sorted(entry.kept.items()):
            rows.append(
                (
                    entry.method,
                    op,
                    entry.total_features,
                    kept,
                    entry.total_features - kept,
                )
            )
        rows.append(
            (entry.method, "TOTAL", entry.total_features, "",
             f"{entry.reduction_ratio:.1%}")
        )
    return format_table(
        ["method", "operator", "features", "kept", "reduced"], rows
    )


def render_table5(rows: List[TemplateScaleRow]) -> str:
    data = [
        (
            row.benchmark,
            row.label,
            f"{row.mean_q_error:.3f}",
            f"{row.collection_ms / 1000.0:.1f}s",
        )
        for row in rows
    ]
    return format_table(
        ["dataset", "snapshot", "mean q-error", "collection (simulated)"], data
    )


def render_table6(rows: List[ReferenceCountRow]) -> str:
    data = [
        (
            row.n_references,
            f"{row.mean_q_error:.3f}",
            f"{row.q95:.3f}",
            f"{row.q90:.3f}",
            f"{row.fr_runtime_seconds:.2f}",
            f"{row.reduction_ratio:.1%}",
        )
        for row in rows
    ]
    return format_table(
        ["references", "mean", "q95", "q90", "FR runtime (s)", "reduction"], data
    )


def render_table7(rows: List[TransferRow]) -> str:
    data = [
        (
            row.benchmark,
            row.model,
            f"{row.pearson:.3f}",
            f"{row.mean_q_error:.3f}",
            f"{row.train_seconds:.2f}",
        )
        for row in rows
    ]
    return format_table(["dataset", "model", "pearson", "mean", "time (s)"], data)


def render_figure8(curves: Dict[str, List[Tuple[int, float]]]) -> str:
    rows = []
    for variant, points in curves.items():
        for epoch, q_error in points:
            rows.append((variant, epoch, f"{q_error:.3f}"))
    return format_table(["variant", "epochs", "mean q-error"], rows)
