"""Evaluation metrics: q-error (paper Eq. 2), Pearson (Eq. 3), summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..nn.loss import numpy_q_error
from ..models.training import pearson_correlation

__all__ = [
    "numpy_q_error",
    "pearson_correlation",
    "QErrorSummary",
    "summarize_q_errors",
]


@dataclass(frozen=True)
class QErrorSummary:
    """Distributional summary of a q-error vector."""

    mean: float
    percentiles: Dict[int, float]
    maximum: float
    count: int

    @property
    def median(self) -> float:
        return self.percentiles[50]

    def quantile_box(self) -> Dict[str, float]:
        """The 25/50/75 box the paper's Figure 5 plots."""
        return {
            "q25": self.percentiles[25],
            "q50": self.percentiles[50],
            "q75": self.percentiles[75],
        }


def summarize_q_errors(
    predictions: Sequence[float], actuals: Sequence[float]
) -> QErrorSummary:
    """Compute the q-error summary used across all experiments."""
    q = numpy_q_error(np.asarray(predictions), np.asarray(actuals))
    percentiles = {
        p: float(np.percentile(q, p)) for p in (25, 50, 75, 90, 95, 99)
    }
    return QErrorSummary(
        mean=float(q.mean()),
        percentiles=percentiles,
        maximum=float(q.max()),
        count=int(q.size),
    )
