"""Experiment harness: shared setup, caching and scale control.

Paper-scale runs (17,600 labelled queries, 800 iterations, 20
environments) are impractically slow on a pure-numpy stack, so every
experiment reads its scale from environment variables with small
defaults that preserve each result's *shape*:

- ``QCFE_SCALE``   — labelled queries per experiment (default 480)
- ``QCFE_EPOCHS``  — training epochs               (default 14)
- ``QCFE_ENVS``    — knob configurations           (default 6)

Labelled-plan collection is memoised per (benchmark, envs, total,
seed), so the benches in one pytest session share the expensive parts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..engine.environment import DatabaseEnvironment, random_environments
from ..engine.executor import LabeledPlan
from ..workload.collect import Benchmark, collect_labeled_plans, get_benchmark


def env_int(name: str, default: int) -> int:
    """Read an integer experiment knob from the environment."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def default_scale() -> int:
    return env_int("QCFE_SCALE", 480)


def default_epochs() -> int:
    return env_int("QCFE_EPOCHS", 14)


def default_env_count() -> int:
    return env_int("QCFE_ENVS", 6)


@dataclass
class ExperimentContext:
    """Caches benchmarks, environment pools and labelled collections."""

    seed: int = 0
    _benchmarks: Dict[str, Benchmark] = None  # type: ignore[assignment]
    _labeled: Dict[Tuple, List[LabeledPlan]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self._benchmarks = {}
        self._labeled = {}

    def benchmark(self, name: str) -> Benchmark:
        if name not in self._benchmarks:
            self._benchmarks[name] = get_benchmark(name)
        return self._benchmarks[name]

    def environments(
        self, count: Optional[int] = None, hardware: str = "h1_r7_7735hs"
    ) -> List[DatabaseEnvironment]:
        count = count or default_env_count()
        return random_environments(count, seed=self.seed, hardware=hardware)

    def labeled(
        self,
        benchmark_name: str,
        total: Optional[int] = None,
        env_count: Optional[int] = None,
        hardware: str = "h1_r7_7735hs",
        seed_offset: int = 0,
    ) -> List[LabeledPlan]:
        total = total or default_scale()
        env_count = env_count or default_env_count()
        key = (benchmark_name, total, env_count, hardware, seed_offset)
        if key not in self._labeled:
            bench = self.benchmark(benchmark_name)
            envs = self.environments(env_count, hardware=hardware)
            self._labeled[key] = collect_labeled_plans(
                bench, envs, total, seed=self.seed + seed_offset
            )
        return self._labeled[key]


#: Module-level context so pytest-benchmark files share caches.
SHARED_CONTEXT = ExperimentContext()
