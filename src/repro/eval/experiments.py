"""One experiment function per table/figure of the paper (Section V).

Each function regenerates the corresponding result at a configurable
(reduced) scale and returns plain data structures that the benchmark
harness prints in the paper's row/series format.  See EXPERIMENTS.md
for measured-vs-paper values and DESIGN.md for the experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.pipeline import QCFE, QCFEConfig
from ..core.snapshot import SnapshotSet, fit_snapshot_from_queries
from ..core.templates import generate_simplified_queries
from ..engine.environment import DatabaseEnvironment, random_environments
from ..engine.executor import ExecutionSimulator, LabeledPlan
from ..models.postgres import PostgresCostEstimator
from ..models.qppnet import QPPNet
from ..models.training import evaluate_estimator, train_test_split
from ..nn.loss import numpy_q_error
from ..workload.collect import collect_labeled_plans
from .harness import (
    ExperimentContext,
    SHARED_CONTEXT,
    default_env_count,
    default_epochs,
    default_scale,
)
from .metrics import QErrorSummary, summarize_q_errors

MODEL_NAMES = ("PGSQL", "QCFE(mscn)", "QCFE(qpp)", "MSCN", "QPPNet")


# ----------------------------------------------------------------------
# Figure 1: average query cost across database environments
# ----------------------------------------------------------------------
def figure1(
    context: Optional[ExperimentContext] = None,
    n_environments: int = 5,
    n_queries: int = 100,
) -> Dict[str, Dict[str, float]]:
    """Average query cost (ms) per environment on TPCH and Sysbench.

    Paper Figure 1: the same workload costs 2-3x more under some knob
    configurations than others.
    """
    context = context or SHARED_CONTEXT
    result: Dict[str, Dict[str, float]] = {}
    for name in ("tpch", "sysbench"):
        bench = context.benchmark(name)
        queries = [q for _, q in bench.generate_queries(n_queries, seed=11)]
        per_env: Dict[str, float] = {}
        for env in context.environments(n_environments):
            simulator = ExecutionSimulator(bench.catalog, bench.stats, env)
            latencies = [simulator.run_query(q).latency_ms for q in queries]
            per_env[env.knobs.name] = float(np.mean(latencies))
        result[name] = per_env
    return result


# ----------------------------------------------------------------------
# Table IV + Figure 5: time-accuracy across scales
# ----------------------------------------------------------------------
@dataclass
class ModelRow:
    """One (benchmark, model, scale) cell of Table IV."""

    benchmark: str
    model: str
    scale: int
    pearson: float
    mean_q_error: float
    train_seconds: float
    q_summary: QErrorSummary


def _fit_eval_qcfe(
    context: ExperimentContext,
    benchmark_name: str,
    model: str,
    labeled: Sequence[LabeledPlan],
    epochs: int,
    use_qcfe: bool,
    seed: int = 0,
) -> Tuple[float, float, float, QErrorSummary]:
    bench = context.benchmark(benchmark_name)
    envs = context.environments()
    config = QCFEConfig(
        model=model,
        snapshot_source="template" if use_qcfe else None,
        reduction="diff" if use_qcfe else None,
        epochs=epochs,
        seed=seed,
    )
    pipeline = QCFE(bench, envs, config)
    train, test = train_test_split(list(labeled), seed=seed)
    result = pipeline.fit(train)
    report = pipeline.evaluate(test)
    predictions = pipeline.predict_many(test)
    summary = summarize_q_errors(
        predictions, [r.latency_ms for r in test]
    )
    return (
        report.pearson,
        report.mean_q_error,
        result.train_stats.train_seconds,
        summary,
    )


def _fit_eval_postgres(
    labeled: Sequence[LabeledPlan], seed: int = 0
) -> Tuple[float, float, float, QErrorSummary]:
    train, test = train_test_split(list(labeled), seed=seed)
    estimator = PostgresCostEstimator()
    stats = estimator.fit(train)
    report = evaluate_estimator(estimator, test, train_seconds=stats.train_seconds)
    predictions = estimator.predict_many(test)
    summary = summarize_q_errors(predictions, [r.latency_ms for r in test])
    return report.pearson, report.mean_q_error, stats.train_seconds, summary


def table4(
    context: Optional[ExperimentContext] = None,
    benchmarks: Sequence[str] = ("tpch", "sysbench", "joblight"),
    scales: Optional[Sequence[int]] = None,
    epochs: Optional[int] = None,
) -> List[ModelRow]:
    """Time-accuracy of the five methods across labelled-set scales.

    Paper Table IV (scales 2000..10000 there; scaled down here).
    """
    context = context or SHARED_CONTEXT
    base = default_scale()
    scales = list(scales or (base // 2, base))
    epochs = epochs or default_epochs()
    rows: List[ModelRow] = []
    for benchmark_name in benchmarks:
        for scale in scales:
            labeled = context.labeled(benchmark_name, total=scale)
            pearson, mean_q, seconds, summary = _fit_eval_postgres(labeled)
            rows.append(
                ModelRow(benchmark_name, "PGSQL", scale, pearson, mean_q, seconds, summary)
            )
            for model, use_qcfe, label in (
                ("mscn", True, "QCFE(mscn)"),
                ("qppnet", True, "QCFE(qpp)"),
                ("mscn", False, "MSCN"),
                ("qppnet", False, "QPPNet"),
            ):
                pearson, mean_q, seconds, summary = _fit_eval_qcfe(
                    context, benchmark_name, model, labeled, epochs, use_qcfe
                )
                rows.append(
                    ModelRow(benchmark_name, label, scale, pearson, mean_q, seconds, summary)
                )
    return rows


def figure5(
    context: Optional[ExperimentContext] = None,
    benchmarks: Sequence[str] = ("tpch", "sysbench", "joblight"),
    scales: Optional[Sequence[int]] = None,
    epochs: Optional[int] = None,
) -> Dict[Tuple[str, str, int], Dict[str, float]]:
    """Q-error quantile boxes (25/50/75), paper Figure 5.

    Shares all computation with Table IV: the returned mapping has a
    (benchmark, model, scale) key per box.
    """
    rows = table4(context, benchmarks=benchmarks, scales=scales, epochs=epochs)
    return {
        (row.benchmark, row.model, row.scale): row.q_summary.quantile_box()
        for row in rows
        if row.model != "PGSQL"
    }


# ----------------------------------------------------------------------
# Figure 6 + Figure 7: ablation of snapshot sources and reducers
# ----------------------------------------------------------------------
ABLATION_VARIANTS = ("FSO", "FST", "FSO+FR", "FSO+GD", "FSO+Greedy")


def _ablation_config(variant: str, epochs: int, seed: int) -> QCFEConfig:
    source = "template" if variant == "FST" else "original"
    reduction = {
        "FSO": None,
        "FST": None,
        "FSO+FR": "diff",
        "FSO+GD": "gradient",
        "FSO+Greedy": "greedy",
    }[variant]
    return QCFEConfig(
        model="qppnet",
        snapshot_source=source,
        reduction=reduction,
        epochs=epochs,
        seed=seed,
    )


def figure6(
    context: Optional[ExperimentContext] = None,
    benchmarks: Sequence[str] = ("tpch", "sysbench", "joblight"),
    epochs: Optional[int] = None,
    seed: int = 0,
) -> Dict[Tuple[str, str], QErrorSummary]:
    """Ablation of QCFE design choices on QPPNet (paper Figure 6)."""
    context = context or SHARED_CONTEXT
    epochs = epochs or default_epochs()
    results: Dict[Tuple[str, str], QErrorSummary] = {}
    for benchmark_name in benchmarks:
        bench = context.benchmark(benchmark_name)
        envs = context.environments()
        labeled = context.labeled(benchmark_name)
        train, test = train_test_split(labeled, seed=seed)
        for variant in ABLATION_VARIANTS:
            pipeline = QCFE(bench, envs, _ablation_config(variant, epochs, seed))
            pipeline.fit(train)
            predictions = pipeline.predict_many(test)
            results[(benchmark_name, variant)] = summarize_q_errors(
                predictions, [r.latency_ms for r in test]
            )
    return results


@dataclass
class ReductionCounts:
    """Per-operator feature counts for one reducer (paper Figure 7)."""

    method: str
    total_features: int
    kept: Dict[str, int] = field(default_factory=dict)

    @property
    def reduction_ratio(self) -> float:
        if not self.kept:
            return 0.0
        kept_total = sum(self.kept.values())
        return 1.0 - kept_total / (self.total_features * len(self.kept))


def figure7(
    context: Optional[ExperimentContext] = None,
    benchmark_name: str = "tpch",
    epochs: Optional[int] = None,
    seed: int = 0,
) -> List[ReductionCounts]:
    """Features kept per operator by Greedy / GD / FR on TPCH."""
    context = context or SHARED_CONTEXT
    epochs = epochs or default_epochs()
    bench = context.benchmark(benchmark_name)
    envs = context.environments()
    labeled = context.labeled(benchmark_name)
    train, _ = train_test_split(labeled, seed=seed)
    counts: List[ReductionCounts] = []
    for method, reduction in (("Greedy", "greedy"), ("GD", "gradient"), ("FR", "diff")):
        config = QCFEConfig(
            model="qppnet",
            snapshot_source="original",
            reduction=reduction,
            epochs=epochs,
            seed=seed,
        )
        pipeline = QCFE(bench, envs, config)
        result = pipeline.fit(train)
        entry = ReductionCounts(
            method=method, total_features=pipeline.operator_encoder.dim
        )
        for op, mask in result.masks.items():
            entry.kept[op.value] = int(np.asarray(mask).sum())
        counts.append(entry)
    return counts


# ----------------------------------------------------------------------
# Table V: robustness of the template scale
# ----------------------------------------------------------------------
@dataclass
class TemplateScaleRow:
    """One column of Table V: q-error + collection cost at a scale."""

    benchmark: str
    label: str  # "FSO" or "scale=N"
    mean_q_error: float
    collection_ms: float


def table5(
    context: Optional[ExperimentContext] = None,
    benchmarks: Sequence[str] = ("tpch", "joblight"),
    scales: Sequence[int] = (2, 4, 6, 8),
    epochs: Optional[int] = None,
    seed: int = 0,
) -> List[TemplateScaleRow]:
    """FSO vs FST at several template scales (paper Table V).

    Collection cost is the *simulated* execution time of the labelling
    queries, the quantity the paper reports in hours.
    """
    context = context or SHARED_CONTEXT
    epochs = epochs or default_epochs()
    rows: List[TemplateScaleRow] = []
    for benchmark_name in benchmarks:
        bench = context.benchmark(benchmark_name)
        envs = context.environments()
        labeled = context.labeled(benchmark_name)
        train, test = train_test_split(labeled, seed=seed)
        # FSO labels the full original workload per environment, as in
        # the paper (the entire parameter sweep of every template).
        fso_budget = 10 * len(bench.template_texts)
        variants: List[Tuple[str, QCFEConfig]] = [
            (
                "FSO",
                QCFEConfig(
                    model="qppnet", snapshot_source="original", reduction=None,
                    snapshot_queries_per_env=fso_budget, epochs=epochs, seed=seed,
                ),
            )
        ]
        for scale in scales:
            variants.append(
                (
                    f"scale={scale}",
                    QCFEConfig(
                        model="qppnet", snapshot_source="template", reduction=None,
                        template_scale=scale, epochs=epochs, seed=seed,
                    ),
                )
            )
        for label, config in variants:
            pipeline = QCFE(bench, envs, config)
            pipeline.fit(train)
            predictions = pipeline.predict_many(test)
            summary = summarize_q_errors(predictions, [r.latency_ms for r in test])
            assert pipeline.snapshot_set is not None
            rows.append(
                TemplateScaleRow(
                    benchmark=benchmark_name,
                    label=label,
                    mean_q_error=summary.mean,
                    collection_ms=pipeline.snapshot_set.total_collection_ms,
                )
            )
    return rows


# ----------------------------------------------------------------------
# Table VI: robustness of the reference count
# ----------------------------------------------------------------------
@dataclass
class ReferenceCountRow:
    """One row of Table VI."""

    n_references: int
    mean_q_error: float
    q95: float
    q90: float
    fr_runtime_seconds: float
    reduction_ratio: float


def table6(
    context: Optional[ExperimentContext] = None,
    benchmark_name: str = "tpch",
    reference_counts: Sequence[int] = (4, 8, 16, 32, 64),
    epochs: Optional[int] = None,
    seed: int = 0,
) -> List[ReferenceCountRow]:
    """FR robustness to the reference-set size (paper Table VI).

    The paper sweeps 200..500 references over 2000 labelled queries;
    the counts here scale with the reduced default dataset.
    """
    context = context or SHARED_CONTEXT
    epochs = epochs or default_epochs()
    bench = context.benchmark(benchmark_name)
    envs = context.environments()
    labeled = context.labeled(benchmark_name)
    train, test = train_test_split(labeled, seed=seed)
    rows: List[ReferenceCountRow] = []
    for n_references in reference_counts:
        config = QCFEConfig(
            model="qppnet",
            snapshot_source="template",
            reduction="diff",
            n_references=n_references,
            epochs=epochs,
            seed=seed,
        )
        pipeline = QCFE(bench, envs, config)
        result = pipeline.fit(train)
        predictions = pipeline.predict_many(test)
        summary = summarize_q_errors(predictions, [r.latency_ms for r in test])
        rows.append(
            ReferenceCountRow(
                n_references=n_references,
                mean_q_error=summary.mean,
                q95=summary.percentiles[95],
                q90=summary.percentiles[90],
                fr_runtime_seconds=result.scoring_seconds,
                reduction_ratio=result.reduction_ratio,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table VII + Figure 8: transferability of the feature snapshot
# ----------------------------------------------------------------------
@dataclass
class TransferRow:
    """One cell of Table VII."""

    benchmark: str
    model: str  # "basis" | "direct" | "trans-FSO" | "trans-FST"
    pearson: float
    mean_q_error: float
    train_seconds: float


def _transfer_snapshot_set(
    bench,
    envs_h1: Sequence[DatabaseEnvironment],
    envs_h2: Sequence[DatabaseEnvironment],
    source: str,
    template_scale: int,
    seed: int,
) -> SnapshotSet:
    """Snapshots for the union of environments, so normalisation is
    consistent between basis training and transfer retraining."""
    snapshots = []
    for index, env in enumerate([*envs_h1, *envs_h2]):
        simulator = ExecutionSimulator(bench.catalog, bench.stats, env)
        if source == "template":
            queries = generate_simplified_queries(
                bench.template_texts, bench.catalog, bench.abstract,
                scale=template_scale, seed=seed + index,
            )
        else:
            queries = [
                q for _, q in bench.generate_queries(24, seed=2000 + seed + index)
            ]
        snapshots.append(fit_snapshot_from_queries(queries, simulator, source=source))
    return SnapshotSet(snapshots)


def table7(
    context: Optional[ExperimentContext] = None,
    benchmarks: Sequence[str] = ("tpch", "joblight"),
    epochs: Optional[int] = None,
    retrain_epochs: Optional[int] = None,
    seed: int = 0,
) -> List[TransferRow]:
    """Transfer a trained model to new hardware h2 (paper Table VII).

    The basis model trains on h1 environments.  Transfer variants swap
    in an h2-fitted snapshot (FSO or FST) and briefly retrain on a
    small h2 labelled set; "direct" trains from scratch on that set.
    """
    context = context or SHARED_CONTEXT
    epochs = epochs or default_epochs()
    retrain_epochs = retrain_epochs or max(2, epochs // 4)
    rows: List[TransferRow] = []
    for benchmark_name in benchmarks:
        bench = context.benchmark(benchmark_name)
        envs_h1 = context.environments(hardware="h1_r7_7735hs")
        envs_h2 = random_environments(
            max(2, default_env_count() // 2), seed=99, hardware="h2_i7_12700h"
        )
        labeled_h1 = context.labeled(benchmark_name, hardware="h1_r7_7735hs")
        h2_total = max(len(labeled_h1) // 2, 80)
        labeled_h2 = collect_labeled_plans(bench, envs_h2, h2_total, seed=7)
        train_h2, test_h2 = train_test_split(labeled_h2, seed=seed)

        for source in ("original", "template"):
            snapshot_set = _transfer_snapshot_set(
                bench, envs_h1, envs_h2, source, template_scale=8, seed=seed
            )
            encoder_pipeline = QCFE(
                bench,
                envs_h1,
                QCFEConfig(
                    model="qppnet", snapshot_source=None, reduction=None,
                    epochs=epochs, seed=seed,
                ),
            )
            basis = encoder_pipeline.estimator
            basis_stats = basis.fit(labeled_h1, snapshot_set=snapshot_set)
            if source == "original":
                report = evaluate_estimator(
                    basis, test_h2, snapshot_set=snapshot_set,
                    train_seconds=basis_stats.train_seconds,
                )
                rows.append(
                    TransferRow(
                        benchmark_name, "basis", report.pearson,
                        report.mean_q_error, basis_stats.train_seconds,
                    )
                )
                direct = QCFE(
                    bench,
                    envs_h2,
                    QCFEConfig(
                        model="qppnet", snapshot_source=None, reduction=None,
                        epochs=epochs, seed=seed,
                    ),
                ).estimator
                direct_stats = direct.fit(train_h2)
                report = evaluate_estimator(
                    direct, test_h2, train_seconds=direct_stats.train_seconds
                )
                rows.append(
                    TransferRow(
                        benchmark_name, "direct", report.pearson,
                        report.mean_q_error, direct_stats.train_seconds,
                    )
                )
            # transfer: keep basis weights, retrain briefly on h2 labels.
            basis.epochs = retrain_epochs
            retrain_stats = basis.fit(train_h2, snapshot_set=snapshot_set)
            basis.epochs = epochs
            report = evaluate_estimator(
                basis, test_h2, snapshot_set=snapshot_set,
                train_seconds=retrain_stats.train_seconds,
            )
            label = "trans-FSO" if source == "original" else "trans-FST"
            rows.append(
                TransferRow(
                    benchmark_name, label, report.pearson,
                    report.mean_q_error, retrain_stats.train_seconds,
                )
            )
    return rows


def figure8(
    context: Optional[ExperimentContext] = None,
    benchmark_name: str = "tpch",
    epochs: Optional[int] = None,
    checkpoint_every: int = 2,
    seed: int = 0,
) -> Dict[str, List[Tuple[int, float]]]:
    """Convergence of direct vs transferred training (paper Figure 8).

    Returns per-variant lists of (cumulative epochs, mean q-error on
    the h2 test set); the transferred model should reach the direct
    model's accuracy in a fraction of the iterations.
    """
    context = context or SHARED_CONTEXT
    epochs = epochs or default_epochs()
    bench = context.benchmark(benchmark_name)
    envs_h1 = context.environments(hardware="h1_r7_7735hs")
    envs_h2 = random_environments(
        max(2, default_env_count() // 2), seed=99, hardware="h2_i7_12700h"
    )
    labeled_h1 = context.labeled(benchmark_name, hardware="h1_r7_7735hs")
    labeled_h2 = collect_labeled_plans(
        bench, envs_h2, max(len(labeled_h1) // 2, 80), seed=7
    )
    train_h2, test_h2 = train_test_split(labeled_h2, seed=seed)
    snapshot_set = _transfer_snapshot_set(
        bench, envs_h1, envs_h2, "template", template_scale=8, seed=seed
    )

    def curve(model: QPPNet, train, snap) -> List[Tuple[int, float]]:
        points: List[Tuple[int, float]] = []
        total = 0
        original_epochs = model.epochs
        while total < epochs:
            step = min(checkpoint_every, epochs - total)
            model.epochs = step
            model.fit(train, snapshot_set=snap)
            total += step
            predictions = model.predict_many(test_h2, snapshot_set=snap)
            q = float(
                numpy_q_error(
                    predictions, np.array([r.latency_ms for r in test_h2])
                ).mean()
            )
            points.append((total, q))
        model.epochs = original_epochs
        return points

    direct = QCFE(
        bench, envs_h2,
        QCFEConfig(model="qppnet", snapshot_source=None, reduction=None,
                   epochs=epochs, seed=seed),
    ).estimator
    direct_curve = curve(direct, train_h2, None)

    transferred = QCFE(
        bench, envs_h1,
        QCFEConfig(model="qppnet", snapshot_source=None, reduction=None,
                   epochs=epochs, seed=seed),
    ).estimator
    transferred.fit(labeled_h1, snapshot_set=snapshot_set)  # basis training
    transfer_curve = curve(transferred, train_h2, snapshot_set)

    return {"direct": direct_curve, "transfer": transfer_curve}
