"""A small reverse-mode automatic differentiation engine on numpy.

The paper's models (QPPNet, MSCN) are built from dense layers and ReLU
activations; QPPNet additionally needs a *dynamic* graph because every
query plan induces a different composition of per-operator neural
units.  This module provides exactly that: a :class:`Tensor` wrapping a
``numpy.ndarray`` that records the operations applied to it and can
back-propagate gradients through an arbitrary DAG.

Only the operations the repro needs are implemented, but each supports
full numpy broadcasting with correct gradient reduction.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

Number = Union[int, float]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum *grad* down to *shape*, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading dims added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dims that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts; stored as ``float64``.
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data, requires_grad=any(p.requires_grad for p in parents))
        if out.requires_grad:
            out._backward = backward
            out._parents = parents
        return out

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** only supports scalar exponents")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(self.data**exponent, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim else grad * other.data)
                else:
                    g = grad if grad.ndim > 1 else grad[None, :]
                    res = g @ other.data.T
                    self._accumulate(res.reshape(self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    g = grad if grad.ndim > 1 else grad[None, :]
                    other._accumulate(self.data.T @ g if g.ndim > 1 else self.data.T @ grad)

        return self._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # nonlinearities and elementwise functions
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -60.0, 60.0))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return self._make(np.abs(self.data), (self,), backward)

    def clip_min(self, low: float) -> "Tensor":
        """Elementwise ``max(self, low)`` with a straight-through lower branch."""
        mask = self.data > low

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(np.maximum(self.data, low), (self,), backward)

    # ------------------------------------------------------------------
    # reductions and reshaping
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad) / count
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(self.data.mean(axis=axis, keepdims=keepdims), (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        old_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(old_shape))

        return self._make(self.data.reshape(*shape), (self,), backward)

    @property
    def T(self) -> "Tensor":  # noqa: N802 - numpy-style name
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return self._make(self.data.T, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return self._make(self.data[key], (self,), backward)

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (so a scalar loss needs no argument).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                grad = np.broadcast_to(grad, self.data.shape).copy()

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along *axis* with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:], strict=True):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    out = Tensor(data, requires_grad=any(t.requires_grad for t in tensors))
    if out.requires_grad:
        out._backward = backward
        out._parents = tuple(tensors)
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new *axis* with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        parts = np.split(grad, len(tensors), axis=axis)
        for tensor, part in zip(tensors, parts, strict=True):
            if tensor.requires_grad:
                tensor._accumulate(part.reshape(tensor.shape))

    out = Tensor(data, requires_grad=any(t.requires_grad for t in tensors))
    if out.requires_grad:
        out._backward = backward
        out._parents = tuple(tensors)
    return out


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce *value* to a (non-differentiable) Tensor."""
    return value if isinstance(value, Tensor) else Tensor(value)
