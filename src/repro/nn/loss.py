"""Loss functions for cost-model training.

Learned cost estimators are conventionally trained on log-transformed
latencies with a squared error (QPPNet, MSCN and the end-to-end
estimator all do this); we also provide the mean-q-error surrogate used
by several follow-up works.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

_EPS = 1e-9


def mse(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = pred - as_tensor(target)
    return (diff * diff).mean()


def mae(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    return (pred - as_tensor(target)).abs().mean()


def log_mse(pred: Tensor, target: Tensor) -> Tensor:
    """MSE between ``log(pred)`` and ``log(target)``.

    Both operands are clamped to a small positive floor first, so the
    loss is defined even when the model briefly predicts a negative
    cost early in training.
    """
    p = pred.clip_min(_EPS).log()
    t = as_tensor(target).clip_min(_EPS).log()
    diff = p - t
    return (diff * diff).mean()


def q_error_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Smooth surrogate of the mean q-error.

    ``max(p/t, t/p)`` is non-differentiable at p == t; the standard
    smooth surrogate ``p/t + t/p`` (minimised at the same point) is used
    instead, with clamping for stability.
    """
    p = pred.clip_min(_EPS)
    t = as_tensor(target).clip_min(_EPS)
    ratio = p / t + t / p
    return ratio.mean()


def numpy_q_error(pred: np.ndarray, actual: np.ndarray, eps: float = _EPS) -> np.ndarray:
    """Vector of q-errors ``max(actual/pred, pred/actual)`` (paper Eq. 2)."""
    p = np.maximum(np.asarray(pred, dtype=np.float64), eps)
    a = np.maximum(np.asarray(actual, dtype=np.float64), eps)
    return np.maximum(a / p, p / a)
