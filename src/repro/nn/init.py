"""Weight initialisation schemes for the nn substrate."""

from __future__ import annotations

import numpy as np

from ..rng import rng_for


def kaiming_uniform(fan_in: int, fan_out: int, seed_key: object = 0) -> np.ndarray:
    """He/Kaiming uniform init, the PyTorch default for Linear + ReLU."""
    bound = np.sqrt(6.0 / fan_in)
    return rng_for("kaiming", seed_key, fan_in, fan_out).uniform(
        -bound, bound, size=(fan_in, fan_out)
    )


def xavier_uniform(fan_in: int, fan_out: int, seed_key: object = 0) -> np.ndarray:
    """Glorot/Xavier uniform init for tanh/sigmoid layers."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng_for("xavier", seed_key, fan_in, fan_out).uniform(
        -bound, bound, size=(fan_in, fan_out)
    )


def bias_uniform(fan_in: int, size: int, seed_key: object = 0) -> np.ndarray:
    """PyTorch-style bias init: uniform in +-1/sqrt(fan_in)."""
    bound = 1.0 / np.sqrt(max(fan_in, 1))
    return rng_for("bias", seed_key, fan_in, size).uniform(-bound, bound, size=size)
