"""Deterministic fixed-block GEMM: the fused-batch inference kernel.

The serving stack promises *bit-identical* predictions whether a plan
is estimated alone or inside a micro-batch flush.  A plain
``x @ W`` cannot keep that promise: BLAS picks its reduction blocking
from the full matrix shape, so the same row produces last-ulp
different results depending on how many other rows share the call
(observed on OpenBLAS: ``X[i] @ W != (X @ W)[i]`` by ~1e-14).

The fix is to take the shape out of BLAS's hands: pad the row count to
a multiple of :data:`BLOCK_ROWS` and issue only constant-shape
``(BLOCK_ROWS, k) @ (k, m)`` multiplies.  With the block shape fixed,
a row's result depends on nothing but its own contents — not its
position, not its neighbours, not the batch size — so zero-padding is
safe and scalar/batched paths agree bit for bit by construction.
Elementwise activations and the bias add are row-local already and
need no blocking.
"""

from __future__ import annotations

import numpy as np

#: Rows per fixed-shape GEMM call.  Small enough that a single-plan
#: request pads little, large enough that big flushes still amortise
#: the Python loop (a 512-row batch is 16 calls).
BLOCK_ROWS = 32


def blocked_matmul(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray
) -> np.ndarray:
    """``x @ weight + bias`` with batch-size-independent rounding.

    Every GEMM issued has the constant shape ``(BLOCK_ROWS, k) @
    (k, m)`` (rows are zero-padded up to the block), so row ``i`` of
    the result is a pure function of ``x[i]`` — see the module
    docstring.  Used by every inference entry point that must stay
    bit-identical between the scalar and fused-batch serving paths.
    """
    rows = x.shape[0]
    if rows == 0:
        return np.zeros((0, weight.shape[1]))
    x = np.ascontiguousarray(x)
    pad = (-rows) % BLOCK_ROWS
    if pad:
        padded = np.zeros((rows + pad, x.shape[1]), dtype=x.dtype)
        padded[:rows] = x
        x = padded
    out = np.empty((x.shape[0], weight.shape[1]), dtype=np.float64)
    for lo in range(0, x.shape[0], BLOCK_ROWS):
        out[lo:lo + BLOCK_ROWS] = x[lo:lo + BLOCK_ROWS] @ weight
    out += bias
    return out[:rows]
