"""Minimal numpy neural-network substrate (autodiff, layers, optim).

Replaces the paper's PyTorch dependency; see DESIGN.md for why a
dynamic-graph autodiff is required by QPPNet's per-plan structure.
"""

from .batched import BLOCK_ROWS, blocked_matmul
from .tensor import Tensor, as_tensor, concat, stack
from .layers import Linear, Module, ReLU, Sequential, Sigmoid, Tanh, mlp
from .loss import log_mse, mae, mse, numpy_q_error, q_error_loss
from .optim import SGD, Adam, Optimizer, clip_grad_norm

__all__ = [
    "BLOCK_ROWS",
    "blocked_matmul",
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "Linear",
    "Module",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "mlp",
    "mse",
    "mae",
    "log_mse",
    "q_error_loss",
    "numpy_q_error",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
]
