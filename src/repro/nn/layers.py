"""Neural-network layers built on the autodiff Tensor.

The layer set intentionally mirrors what QPPNet and MSCN need: dense
layers, ReLU/Sigmoid activations and sequential composition.  Layers
expose ``parameters()`` for the optimizers and a functional
``__call__``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

import numpy as np

from . import init as _init
from .batched import blocked_matmul
from .tensor import Tensor


class Module:
    """Base class: anything with parameters and a forward pass."""

    def parameters(self) -> List[Tensor]:
        """Return all trainable tensors (default: none)."""
        return []

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def forward_numpy(self, x: np.ndarray) -> np.ndarray:
        """Inference-only forward on raw arrays.

        Bit-identical to :meth:`forward` but skips building the
        autodiff graph — the serving hot path uses this; training
        never should.
        """
        raise NotImplementedError

    def forward_batched(self, x: np.ndarray) -> np.ndarray:
        """Batch-size-invariant inference forward.

        Like :meth:`forward_numpy`, but additionally guarantees that
        row ``i`` of the output depends only on row ``i`` of the input
        — so fusing many requests into one call cannot perturb any
        single request's result (see :mod:`repro.nn.batched`).
        Elementwise layers are row-local already, so the default simply
        delegates; layers that reduce across the feature axis (dense
        matmuls) must override.
        """
        return self.forward_numpy(x)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    def state_dict(self) -> List[np.ndarray]:
        """Copy of every parameter array, for checkpoint/restore."""
        return [p.data.copy() for p in self.parameters()]

    def load_state_dict(self, state: Sequence[np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} arrays, model has {len(params)} parameters"
            )
        for p, array in zip(params, state, strict=True):
            if p.data.shape != array.shape:
                raise ValueError(f"shape mismatch: {p.data.shape} vs {array.shape}")
            p.data = array.copy()


class Linear(Module):
    """Dense layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, seed_key: object = 0):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            _init.kaiming_uniform(in_features, out_features, seed_key), requires_grad=True
        )
        self.bias = Tensor(
            _init.bias_uniform(in_features, out_features, seed_key), requires_grad=True
        )

    def parameters(self) -> List[Tensor]:
        return [self.weight, self.bias]

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias

    def forward_numpy(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weight.data + self.bias.data

    def forward_batched(self, x: np.ndarray) -> np.ndarray:
        """Fixed-block GEMM so the result is batch-size-invariant."""
        return blocked_matmul(x, self.weight.data, self.bias.data)

    def __repr__(self) -> str:
        return f"Linear({self.in_features} -> {self.out_features})"


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def forward_numpy(self, x: np.ndarray) -> np.ndarray:
        return x * (x > 0)

    def __repr__(self) -> str:
        return "ReLU()"


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def forward_numpy(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def forward_numpy(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def __repr__(self) -> str:
        return "Tanh()"


class Sequential(Module):
    """Compose modules in order; also the hook point for difference
    propagation, which walks ``.modules`` layer by layer."""

    def __init__(self, *modules: Module):
        self.modules: List[Module] = list(modules)

    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        for module in self.modules:
            params.extend(module.parameters())
        return params

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def forward_numpy(self, x: np.ndarray) -> np.ndarray:
        for module in self.modules:
            x = module.forward_numpy(x)
        return x

    def forward_batched(self, x: np.ndarray) -> np.ndarray:
        """Chain each layer's batch-size-invariant forward."""
        for module in self.modules:
            x = module.forward_batched(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    def __repr__(self) -> str:
        inner = ", ".join(repr(m) for m in self.modules)
        return f"Sequential({inner})"


def mlp(
    in_features: int,
    hidden: Iterable[int],
    out_features: int,
    seed_key: object = 0,
    activation: str = "relu",
) -> Sequential:
    """Build a standard MLP: Linear/act pairs ending in a bare Linear.

    ``activation`` may be ``"relu"``, ``"sigmoid"`` or ``"tanh"``; the
    paper's example models use ReLU (which is what makes plain gradient
    importance fail, Section IV-B).
    """
    acts = {"relu": ReLU, "sigmoid": Sigmoid, "tanh": Tanh}
    if activation not in acts:
        raise ValueError(f"unknown activation {activation!r}")
    layers: List[Module] = []
    last = in_features
    for index, width in enumerate(hidden):
        layers.append(Linear(last, width, seed_key=(seed_key, index)))
        layers.append(acts[activation]())
        last = width
    layers.append(Linear(last, out_features, seed_key=(seed_key, "out")))
    return Sequential(*layers)
