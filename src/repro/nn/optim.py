"""Gradient-descent optimizers for the nn substrate."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, parameters: Sequence[Tensor], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters: List[Tensor] = list(parameters)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel = self._velocity[index]
                vel = grad if vel is None else self.momentum * vel + grad
                self._velocity[index] = vel
                grad = vel
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the optimizer used to train QPPNet/MSCN."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for index, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m[index]
            v = self._v[index]
            m = (1 - b1) * grad if m is None else b1 * m + (1 - b1) * grad
            v = (1 - b2) * grad**2 if v is None else b2 * v + (1 - b2) * grad**2
            self._m[index], self._v[index] = m, v
            m_hat = m / (1 - b1**self._t)
            v_hat = v / (1 - b2**self._t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Sequence[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm <= max_norm."""
    total = 0.0
    for p in parameters:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in parameters:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm
