"""repro.cluster.proc — the multi-process serving tier.

Escapes the GIL: replicas are real worker processes (own interpreter,
own pid), so cluster throughput can scale with cores instead of being
time-sliced inside one interpreter.  The pieces:

- :mod:`~repro.cluster.proc.protocol` — length-prefixed JSON/binary
  frames with per-request ids, hard size caps and typed error frames;
- :mod:`~repro.cluster.proc.shm` — model weights published read-only
  through ``multiprocessing.shared_memory`` (N workers, one copy) with
  orphan-segment sweeping for abnormal exits;
- :mod:`~repro.cluster.proc.worker` — the child process: one
  ``CostService`` warm-booted from ``repro.persist`` checkpoints,
  serving frames until EOF;
- :mod:`~repro.cluster.proc.supervisor` — spawn/kill/revive/eject over
  real pids, with sentinel-fd death certification and heartbeats;
- :mod:`~repro.cluster.proc.service` — :class:`ProcClusterService`,
  the same ``estimate`` / ``estimate_many`` / ``estimate_async`` /
  ``record_feedback`` / ``report`` surface as the thread tier.

See ``docs/SERVING.md`` (process tier) for the wire format, the
shared-memory lifecycle and the supervisor state machine.
"""

from .service import ProcClusterService
from .shm import cleanup_orphans, list_segments
from .supervisor import ProcConfig, ProcSupervisor, WorkerHandle

__all__ = [
    "ProcClusterService",
    "ProcConfig",
    "ProcSupervisor",
    "WorkerHandle",
    "cleanup_orphans",
    "list_segments",
]
