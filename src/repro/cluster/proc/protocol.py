"""Length-prefixed JSON/binary framing for supervisor ↔ worker IPC.

Every message on a worker connection is one **frame**:

.. code-block:: text

    0      2      3        4            8           12
    +------+------+--------+------------+------------+----------+------+
    | "QF" | ver  | 0x00   | header_len | tail_len   | header   | tail |
    +------+------+--------+------------+------------+----------+------+
      magic  u8     pad      u32 BE       u32 BE       JSON       bytes

The *header* is a UTF-8 JSON object carrying at least an integer
``id`` (request/response correlation) and a string ``kind``; the
*tail* is an opaque binary payload (array blobs, batched prediction
vectors) so bulk float64 data never round-trips through text — the
codec split that keeps process-tier predictions bit-identical to the
in-process tier.

The decoder is deliberately paranoid: bad magic, an unknown version,
lengths beyond the hard caps, truncated payloads, non-object headers
and JSON errors all raise :class:`~repro.errors.ProtocolError` (a
:class:`~repro.errors.ClusterError`), never a builtin.  A peer that
dies mid-frame surfaces as :class:`~repro.errors.WorkerDiedError`.
Error *frames* are typed too: a worker maps an exception onto a
whitelisted ``repro.errors`` class name which the parent rehydrates,
so a worker-side ``ShardOverloadError`` sheds on the parent exactly
like a thread-tier one.
"""

from __future__ import annotations

import json
import struct
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ... import errors
from ...engine.environment import DatabaseEnvironment
from ...engine.hardware import PROFILES, HardwareProfile
from ...engine.knobs import KnobConfiguration
from ...engine.operators import PlanNode
from ...errors import ProtocolError, ReproError, WorkerDiedError
from ...persist import plan_from_state, plan_to_state
from ...sql.ast import SelectQuery

#: First two bytes of every frame.
MAGIC = b"QF"

#: Wire format version; bumped on any incompatible layout change.
PROTOCOL_VERSION = 1

#: Fixed-size frame prefix: magic, version, pad, header len, tail len.
_PREFIX = struct.Struct(">2sBBII")

#: Byte size of the fixed prefix.
PREFIX_SIZE = _PREFIX.size

#: Hard cap on the JSON header region (16 MiB).
MAX_HEADER_BYTES = 16 * 1024 * 1024

#: Hard cap on the binary tail region (256 MiB).
MAX_TAIL_BYTES = 256 * 1024 * 1024

#: Exception classes a worker may name in an error frame.  Anything
#: outside this whitelist rehydrates as plain ``ClusterError`` — a
#: worker cannot make the parent raise an arbitrary class.
ERROR_TYPES: Dict[str, type] = {
    name: obj
    for name, obj in vars(errors).items()
    if isinstance(obj, type) and issubclass(obj, ReproError)
}


# ----------------------------------------------------------------------
# frame encode / decode
# ----------------------------------------------------------------------
def encode_frame(header: Dict[str, object], tail: bytes = b"") -> bytes:
    """One wire frame for *header* (+ optional binary *tail*)."""
    body = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"frame header is {len(body)} bytes, cap {MAX_HEADER_BYTES}"
        )
    if len(tail) > MAX_TAIL_BYTES:
        raise ProtocolError(
            f"frame tail is {len(tail)} bytes, cap {MAX_TAIL_BYTES}"
        )
    prefix = _PREFIX.pack(MAGIC, PROTOCOL_VERSION, 0, len(body), len(tail))
    return prefix + body + tail


def decode_prefix(prefix: bytes) -> Tuple[int, int]:
    """Validated ``(header_len, tail_len)`` from a 12-byte prefix."""
    if len(prefix) != PREFIX_SIZE:
        raise ProtocolError(
            f"frame prefix is {len(prefix)} bytes, need {PREFIX_SIZE}"
        )
    magic, version, _pad, header_len, tail_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"peer speaks protocol v{version}, this build v{PROTOCOL_VERSION}"
        )
    if header_len == 0 or header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"impossible header length {header_len}")
    if tail_len > MAX_TAIL_BYTES:
        raise ProtocolError(f"impossible tail length {tail_len}")
    return header_len, tail_len


def decode_header(body: bytes) -> Dict[str, object]:
    """Validated header object from the JSON region of a frame."""
    try:
        header = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparseable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(
            f"frame header must be a JSON object, got {type(header).__name__}"
        )
    if not isinstance(header.get("id"), int):
        raise ProtocolError("frame header lacks an integer 'id'")
    if not isinstance(header.get("kind"), str):
        raise ProtocolError("frame header lacks a string 'kind'")
    return header


def decode_frame(data: bytes) -> Tuple[Dict[str, object], bytes]:
    """Decode one complete frame held in *data* (fuzz-test surface).

    Trailing bytes beyond the declared lengths are a
    :class:`ProtocolError` — a stream that framed correctly cannot
    leave residue.
    """
    header_len, tail_len = decode_prefix(data[:PREFIX_SIZE])
    expected = PREFIX_SIZE + header_len + tail_len
    if len(data) != expected:
        raise ProtocolError(
            f"frame declares {expected} bytes, buffer holds {len(data)}"
        )
    header = decode_header(data[PREFIX_SIZE : PREFIX_SIZE + header_len])
    tail = data[PREFIX_SIZE + header_len :]
    return header, tail


# ----------------------------------------------------------------------
# socket I/O
# ----------------------------------------------------------------------
def _recv_exactly(sock, count: int) -> Optional[bytes]:
    """Exactly *count* bytes from *sock*; None on clean EOF at offset
    zero; :class:`WorkerDiedError` on EOF mid-read."""
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except OSError as exc:
            raise WorkerDiedError(f"connection lost mid-frame: {exc}") from exc
        if not chunk:
            if remaining == count and not chunks:
                return None
            raise WorkerDiedError(
                f"peer closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> Optional[Tuple[Dict[str, object], bytes]]:
    """Read one frame from *sock*; None on clean EOF between frames."""
    prefix = _recv_exactly(sock, PREFIX_SIZE)
    if prefix is None:
        return None
    header_len, tail_len = decode_prefix(prefix)
    body = _recv_exactly(sock, header_len)
    if body is None:
        raise WorkerDiedError("peer closed between prefix and header")
    header = decode_header(body)
    tail = b""
    if tail_len:
        got = _recv_exactly(sock, tail_len)
        if got is None:
            raise WorkerDiedError("peer closed between header and tail")
        tail = got
    return header, tail


def send_frame(sock, header: Dict[str, object], tail: bytes = b"") -> None:
    """Write one frame to *sock* (single ``sendall``)."""
    try:
        sock.sendall(encode_frame(header, tail))
    except OSError as exc:
        raise WorkerDiedError(f"connection lost while sending: {exc}") from exc


# ----------------------------------------------------------------------
# typed error frames
# ----------------------------------------------------------------------
def error_to_wire(exc: BaseException) -> Dict[str, object]:
    """The error-frame payload naming *exc*'s whitelisted type."""
    name = type(exc).__name__
    if name not in ERROR_TYPES:
        name = "ClusterError"
    return {"type": name, "message": str(exc)}


def error_from_wire(payload: object) -> ReproError:
    """Rehydrate an error-frame payload into a typed exception."""
    if not isinstance(payload, dict):
        return ProtocolError(f"malformed error payload {payload!r}")
    cls = ERROR_TYPES.get(str(payload.get("type")), errors.ClusterError)
    return cls(str(payload.get("message", "worker error")))


# ----------------------------------------------------------------------
# value codecs (environments, queries, float vectors)
# ----------------------------------------------------------------------
def env_to_wire(env: DatabaseEnvironment) -> Dict[str, object]:
    """A :class:`DatabaseEnvironment` as plain JSON data.

    Hardware profiles ship by field, not just by name, so custom
    profiles (``random_profile``) survive the boundary too.
    """
    hw = env.hardware
    return {
        "knobs": {"name": env.knobs.name, "values": dict(env.knobs.values)},
        "hardware": {
            "name": hw.name,
            "seq_ms_per_page": hw.seq_ms_per_page,
            "rand_ms_per_page": hw.rand_ms_per_page,
            "cached_ms_per_page": hw.cached_ms_per_page,
            "cpu_ms_per_ktuple": hw.cpu_ms_per_ktuple,
            "memory_gb": hw.memory_gb,
            "disk": hw.disk,
        },
        "name": env.name,
    }


def env_from_wire(state: object) -> DatabaseEnvironment:
    """Inverse of :func:`env_to_wire` (named profiles reused from
    :data:`~repro.engine.hardware.PROFILES` when the fields match)."""
    try:
        knobs_state = dict(state["knobs"])
        hw_state = dict(state["hardware"])
        knobs = KnobConfiguration(
            name=str(knobs_state["name"]), values=dict(knobs_state["values"])
        )
        hardware = HardwareProfile(
            name=str(hw_state["name"]),
            seq_ms_per_page=float(hw_state["seq_ms_per_page"]),
            rand_ms_per_page=float(hw_state["rand_ms_per_page"]),
            cached_ms_per_page=float(hw_state["cached_ms_per_page"]),
            cpu_ms_per_ktuple=float(hw_state["cpu_ms_per_ktuple"]),
            memory_gb=float(hw_state["memory_gb"]),
            disk=str(hw_state.get("disk", "ssd")),
        )
        hardware = PROFILES.get(hardware.name, hardware)
        return DatabaseEnvironment(
            knobs=knobs, hardware=hardware, name=str(state["name"])
        )
    except ReproError:
        raise
    except Exception as exc:  # malformed wire data stays a typed error
        raise ProtocolError(f"invalid environment payload: {exc}") from exc


def query_to_wire(query: object) -> Dict[str, object]:
    """A request query as plain data: SQL text stays text (the worker
    re-parses, paying the full serving path), plan trees ship through
    the persist plan codec."""
    if isinstance(query, str):
        return {"sql": query}
    if isinstance(query, SelectQuery):
        return {"sql": query.sql()}
    if isinstance(query, PlanNode):
        return {"plan": plan_to_state(query)}
    raise ProtocolError(
        f"cannot ship {type(query).__name__} across the worker boundary; "
        "pass SQL text, a SelectQuery or a PlanNode"
    )


def query_from_wire(state: object) -> object:
    """Inverse of :func:`query_to_wire`."""
    if isinstance(state, dict):
        if "sql" in state:
            return str(state["sql"])
        if "plan" in state:
            return plan_from_state(dict(state["plan"]))
    raise ProtocolError(f"invalid query payload {state!r}")


def floats_to_tail(values: np.ndarray) -> Tuple[Dict[str, object], bytes]:
    """A float vector as ``(header fragment, binary tail)`` — raw
    float64 bytes, so batched predictions round-trip bit-exactly."""
    arr = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
    return {"count": int(arr.size)}, arr.tobytes()


def floats_from_tail(fragment: object, tail: bytes) -> np.ndarray:
    """Inverse of :func:`floats_to_tail` (validated)."""
    try:
        count = int(fragment["count"])  # type: ignore[index]
    except (TypeError, KeyError, ValueError) as exc:
        raise ProtocolError(f"malformed vector fragment {fragment!r}") from exc
    if count < 0 or len(tail) != count * 8:
        raise ProtocolError(
            f"vector tail holds {len(tail)} bytes, {count} float64 need "
            f"{count * 8}"
        )
    return np.frombuffer(tail, dtype=np.float64).copy()


#: Signature of the per-kind handlers a serve loop dispatches to.
Handler = Callable[[Dict[str, object], bytes], Tuple[Dict[str, object], bytes]]
