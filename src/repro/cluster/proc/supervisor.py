"""Worker process lifecycle: spawn, monitor, revive, eject.

Two layers live here.  :class:`WorkerHandle` owns exactly one child
process and its plumbing — the ``socketpair`` carrying
:mod:`.protocol` frames, a writer thread (the only place that touches
``sendall``, so no request thread ever blocks on IPC while holding a
lock), a reader thread resolving per-request futures, and the
*sentinel pipe*: the child inherits the write end and never writes;
the parent polls the read end, and EOF is a death certificate no
signal can forge or suppress — SIGKILL included.

:class:`ProcSupervisor` owns the fleet: it sweeps request deadlines,
sends heartbeat pings (a live-but-wedged worker misses enough pongs
to be killed and treated as dead), refreshes per-worker counter
snapshots for the parent metrics registry, and runs the
revive-vs-eject policy — a dead worker is respawned and re-synced up
to ``max_revives`` times, then permanently ejected from routing.  The
state machine per worker::

    spawned ──hello──▶ up ──sentinel EOF / missed pongs──▶ dead
       ▲                                                    │
       └────────── revive (revives < max_revives) ──────────┤
                                                            ▼
                                                         ejected
"""

from __future__ import annotations

import json
import os
import selectors
import signal
import socket
import subprocess
import sys
import threading
import time
from queue import Queue
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ...errors import (
    ClusterError,
    ProtocolError,
    ReproError,
    WorkerDiedError,
    WorkerTimeoutError,
)
from ...obs.lockwatch import make_lock
from . import protocol


@dataclass
class ProcConfig:
    """Tunables for the process tier (service knobs + supervision)."""

    #: Service construction knobs forwarded verbatim to each worker.
    service: Dict[str, object] = field(default_factory=dict)
    #: Spool directory workers warm-boot from (None → cold boot).
    checkpoint_dir: Optional[str] = None
    #: Per-request deadline (estimate/feedback/counters RPCs).
    request_timeout_s: float = 30.0
    #: How long a fresh worker may take to say hello.
    boot_timeout_s: float = 60.0
    #: Deadline for installing a published state in a worker.
    sync_timeout_s: float = 60.0
    #: Heartbeat ping cadence.
    heartbeat_interval_s: float = 1.0
    #: Missed-pong budget before a live pid is declared hung.
    heartbeat_miss_limit: int = 5
    #: Times a dead worker is respawned before permanent ejection.
    max_revives: int = 2
    #: Per-worker in-flight cap (admission control).
    max_inflight: int = 64
    #: Monitor loop tick.
    poll_interval_s: float = 0.05
    #: Counter-snapshot refresh cadence (parent metrics folding).
    counters_interval_s: float = 1.0


class _Pending:
    """One in-flight request: its future, deadline and kind."""

    __slots__ = ("future", "deadline", "kind")

    def __init__(self, future: Future, deadline: float, kind: str):
        self.future = future
        self.deadline = deadline
        self.kind = kind


def _worker_env() -> Dict[str, str]:
    """The child environment, with ``repro``'s source root guaranteed
    on ``PYTHONPATH`` (the child is a fresh interpreter)."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    parts = [src_root] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    return env


class WorkerHandle:
    """One worker process plus its IPC plumbing and pending table."""

    def __init__(self, worker_id: str, config: ProcConfig):
        """Prepare a handle for *worker_id* (call :meth:`spawn` next)."""
        self.worker_id = worker_id
        self.config = config
        self.proc: Optional[subprocess.Popen] = None
        self.sock: Optional[socket.socket] = None
        self.sentinel_fd: int = -1
        self.state = "new"
        self.revives = 0
        self.last_pong = 0.0
        self.cached_counters: Dict[str, object] = {}
        self.generation = -1
        self._pending: Dict[int, _Pending] = {}
        self._lock = make_lock("cluster.proc.handle")
        self._next_id = 0
        self._sendq: "Queue[Optional[bytes]]" = Queue()
        self._reader: Optional[threading.Thread] = None
        self._writer: Optional[threading.Thread] = None
        self._hello: Future = Future()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def spawn(self) -> Dict[str, object]:
        """Start the child and wait for its hello frame.

        Returns the hello header.  Raises
        :class:`~repro.errors.WorkerDiedError` when the child dies (or
        stays silent) before greeting.
        """
        parent_sock, child_sock = socket.socketpair()
        sentinel_r, sentinel_w = os.pipe()
        os.set_inheritable(child_sock.fileno(), True)
        os.set_inheritable(sentinel_w, True)
        worker_cfg = dict(self.config.service)
        worker_cfg["worker_id"] = self.worker_id
        if self.config.checkpoint_dir:
            worker_cfg["checkpoint_dir"] = self.config.checkpoint_dir
        cmd = [
            sys.executable,
            "-m",
            "repro.cluster.proc.worker",
            "--conn-fd",
            str(child_sock.fileno()),
            "--sentinel-fd",
            str(sentinel_w),
            "--config",
            json.dumps(worker_cfg),
        ]
        try:
            self.proc = subprocess.Popen(
                cmd,
                pass_fds=(child_sock.fileno(), sentinel_w),
                env=_worker_env(),
                stdout=subprocess.DEVNULL,
                close_fds=True,
            )
        except OSError as exc:
            os.close(sentinel_r)
            os.close(sentinel_w)
            child_sock.close()
            parent_sock.close()
            raise WorkerDiedError(
                f"cannot spawn worker {self.worker_id}: {exc}"
            ) from exc
        child_sock.close()
        os.close(sentinel_w)
        self.sock = parent_sock
        self.sentinel_fd = sentinel_r
        self.state = "spawned"
        self._hello = Future()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"proc-read-{self.worker_id}",
            daemon=True,
        )
        self._writer = threading.Thread(
            target=self._write_loop, name=f"proc-write-{self.worker_id}",
            daemon=True,
        )
        self._reader.start()
        self._writer.start()
        try:
            hello = self._hello.result(timeout=self.config.boot_timeout_s)
        except (FutureTimeoutError, ReproError) as exc:
            self.kill()
            raise WorkerDiedError(
                f"worker {self.worker_id} never said hello: {exc}"
            ) from exc
        self.state = "up"
        self.last_pong = time.monotonic()
        return hello

    @property
    def pid(self) -> Optional[int]:
        """The child's pid (None before spawn)."""
        return self.proc.pid if self.proc is not None else None

    @property
    def alive(self) -> bool:
        """True while the handle routes requests."""
        return self.state == "up"

    def kill(self) -> None:
        """SIGKILL the child (idempotent; reaping happens in
        :meth:`mark_dead`)."""
        if self.proc is not None and self.proc.poll() is None:
            try:
                self.proc.send_signal(signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass

    def request_stop(self, timeout_s: float = 5.0) -> None:
        """Graceful retirement: shutdown frame, then escalate to kill."""
        if self.state == "up":
            try:
                self.rpc("shutdown", {}, timeout_s=timeout_s)
            except ReproError:
                pass  # already dying; the kill below settles it
        self.mark_dead(WorkerDiedError("worker retired"), kill=True)

    def mark_dead(self, exc: ReproError, kill: bool = False) -> None:
        """Tear down plumbing, fail every pending future with *exc*."""
        if self.state == "dead":
            return
        self.state = "dead"
        if kill:
            self.kill()
        self._sendq.put(None)
        sock, self.sock = self.sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()
        if self.sentinel_fd >= 0:
            try:
                os.close(self.sentinel_fd)
            except OSError:
                pass
            self.sentinel_fd = -1
        if self.proc is not None:
            self.kill()
            try:
                self.proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass
        self._fail_pending(exc)
        if not self._hello.done():
            self._hello.set_exception(exc)

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        payload: Dict[str, object],
        tail: bytes = b"",
        timeout_s: Optional[float] = None,
    ) -> Future:
        """Queue one request frame; the returned future resolves to
        ``(header, tail)`` or raises the typed error."""
        if self.state != "up":
            raise WorkerDiedError(
                f"worker {self.worker_id} is {self.state}, not serving"
            )
        timeout = (
            self.config.request_timeout_s if timeout_s is None else timeout_s
        )
        future: Future = Future()
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            self._pending[request_id] = _Pending(
                future, time.monotonic() + timeout, kind
            )
        header = {"id": request_id, "kind": kind, **payload}
        try:
            frame = protocol.encode_frame(header, tail)
        except ReproError:
            with self._lock:
                self._pending.pop(request_id, None)
            raise
        self._sendq.put(frame)
        return future

    def rpc(
        self,
        kind: str,
        payload: Dict[str, object],
        tail: bytes = b"",
        timeout_s: Optional[float] = None,
    ) -> Tuple[Dict[str, object], bytes]:
        """Blocking :meth:`submit`; timeouts surface as
        :class:`~repro.errors.WorkerTimeoutError`."""
        timeout = (
            self.config.request_timeout_s if timeout_s is None else timeout_s
        )
        future = self.submit(kind, payload, tail, timeout_s=timeout)
        try:
            return future.result(timeout=timeout + 1.0)
        except FutureTimeoutError as exc:
            raise WorkerTimeoutError(
                f"worker {self.worker_id} gave no answer to {kind!r} "
                f"within {timeout:.1f}s"
            ) from exc

    def sweep_deadlines(self, now: float) -> int:
        """Fail overdue pending requests; returns how many expired."""
        expired: List[Tuple[int, _Pending]] = []
        with self._lock:
            for request_id, entry in list(self._pending.items()):
                if now >= entry.deadline:
                    expired.append((request_id, entry))
                    del self._pending[request_id]
        for request_id, entry in expired:
            if not entry.future.done():
                entry.future.set_exception(
                    WorkerTimeoutError(
                        f"worker {self.worker_id} exceeded the "
                        f"{entry.kind!r} deadline"
                    )
                )
        return len(expired)

    def pending_count(self) -> int:
        """How many requests are currently awaiting replies."""
        with self._lock:
            return len(self._pending)

    def _fail_pending(self, exc: ReproError) -> None:
        """Resolve every pending future exceptionally with *exc*."""
        with self._lock:
            entries = list(self._pending.values())
            self._pending.clear()
        for entry in entries:
            if not entry.future.done():
                entry.future.set_exception(exc)

    # ------------------------------------------------------------------
    # I/O threads
    # ------------------------------------------------------------------
    def _read_loop(self) -> None:
        """Resolve futures from reply frames until the stream dies."""
        sock = self.sock
        while True:
            try:
                frame = protocol.recv_frame(sock)
            except ReproError as exc:
                self._on_stream_error(exc)
                return
            if frame is None:
                self._on_stream_error(
                    WorkerDiedError(f"worker {self.worker_id} closed its pipe")
                )
                return
            header, tail = frame
            kind = header.get("kind")
            if kind == "hello":
                if not self._hello.done():
                    self._hello.set_result(header)
                continue
            request_id = int(header["id"])
            with self._lock:
                entry = self._pending.pop(request_id, None)
            if entry is None:
                continue  # deadline sweeper got there first
            if entry.future.done():
                continue
            if kind == "error":
                entry.future.set_exception(
                    protocol.error_from_wire(header.get("error"))
                )
            else:
                entry.future.set_result((header, tail))

    def _on_stream_error(self, exc: ReproError) -> None:
        """Reader-side death: fail pending, leave teardown to the
        supervisor (which sees the sentinel EOF)."""
        if self.state == "up":
            self.state = "broken"
        self._fail_pending(
            exc
            if isinstance(exc, (WorkerDiedError, ProtocolError))
            else WorkerDiedError(str(exc))
        )
        if not self._hello.done():
            self._hello.set_exception(exc)

    def _write_loop(self) -> None:
        """The only writer: drain the queue into ``sendall``."""
        while True:
            frame = self._sendq.get()
            if frame is None:
                return
            sock = self.sock
            if sock is None:
                return
            try:
                sock.sendall(frame)
            except OSError as exc:
                self._on_stream_error(
                    WorkerDiedError(
                        f"worker {self.worker_id} send failed: {exc}"
                    )
                )
                return


class ProcSupervisor:
    """Fleet monitor: death detection, heartbeats, revive-vs-eject."""

    def __init__(
        self,
        config: ProcConfig,
        on_death: Callable[[WorkerHandle, str], None],
        on_revived: Callable[[WorkerHandle], None],
        on_ejected: Callable[[WorkerHandle], None],
    ):
        """Wire the policy callbacks (all invoked on the monitor
        thread): *on_death* fires first with a reason, then exactly one
        of *on_revived* / *on_ejected*."""
        self.config = config
        self.handles: Dict[str, WorkerHandle] = {}
        self._on_death = on_death
        self._on_revived = on_revived
        self._on_ejected = on_ejected
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = os.pipe()
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_heartbeat = 0.0
        self._last_counters = 0.0
        self.deaths = 0
        self.revive_count = 0
        self.ejections = 0
        self.timeouts_swept = 0

    # ------------------------------------------------------------------
    def adopt(self, handle: WorkerHandle) -> None:
        """Begin monitoring *handle* (already spawned and up)."""
        self.handles[handle.worker_id] = handle
        if handle.sentinel_fd >= 0:
            self._selector.register(
                handle.sentinel_fd, selectors.EVENT_READ, handle.worker_id
            )

    def start(self) -> None:
        """Start the monitor thread."""
        self._thread = threading.Thread(
            target=self._run, name="proc-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop monitoring (workers themselves are the service's to
        retire)."""
        self._stop.set()
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        try:
            self._selector.close()
        except (OSError, RuntimeError):
            pass
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def _run(self) -> None:
        """Monitor loop: sentinels, deadlines, heartbeats, counters."""
        while not self._stop.is_set():
            events = self._selector.select(timeout=self.config.poll_interval_s)
            dead: List[str] = []
            for key, _mask in events:
                if key.fd == self._wake_r:
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:
                        pass
                    continue
                if key.data is not None:
                    dead.append(key.data)
            for worker_id in dead:
                self._handle_death(worker_id, "sentinel EOF")
            if self._stop.is_set():
                return
            now = time.monotonic()
            for handle in list(self.handles.values()):
                self.timeouts_swept += handle.sweep_deadlines(now)
            if now - self._last_heartbeat >= self.config.heartbeat_interval_s:
                self._last_heartbeat = now
                self._heartbeat(now)
            if now - self._last_counters >= self.config.counters_interval_s:
                self._last_counters = now
                self._refresh_counters()

    def _heartbeat(self, now: float) -> None:
        """Ping every live worker; kill the ones that stopped ponging."""
        budget = (
            self.config.heartbeat_interval_s * self.config.heartbeat_miss_limit
        )
        for handle in list(self.handles.values()):
            if handle.state == "broken":
                self._handle_death(handle.worker_id, "stream broken")
                continue
            if not handle.alive:
                continue
            if now - handle.last_pong > budget:
                # A pid that exists but won't answer is operationally
                # dead: kill it so the sentinel certifies the death.
                handle.kill()
                self._handle_death(handle.worker_id, "heartbeat missed")
                continue
            try:
                future = handle.submit(
                    "ping", {}, timeout_s=self.config.heartbeat_interval_s
                )
            except ReproError:
                continue  # death path will run via sentinel

            def _pong(fut: Future, handle=handle) -> None:
                if fut.exception() is None:
                    handle.last_pong = time.monotonic()

            future.add_done_callback(_pong)

    def _refresh_counters(self) -> None:
        """Async counter pulls; snapshots land in ``cached_counters``."""
        for handle in list(self.handles.values()):
            if not handle.alive:
                continue
            try:
                future = handle.submit("counters", {})
            except ReproError:
                continue

            def _store(fut: Future, handle=handle) -> None:
                if fut.exception() is None:
                    header, _tail = fut.result()
                    value = header.get("value")
                    if isinstance(value, dict):
                        handle.cached_counters = value

            future.add_done_callback(_store)

    def _handle_death(self, worker_id: str, reason: str) -> None:
        """The revive-vs-eject policy for one certified death."""
        handle = self.handles.get(worker_id)
        if handle is None:
            return
        if handle.sentinel_fd >= 0:
            try:
                self._selector.unregister(handle.sentinel_fd)
            except (KeyError, ValueError, OSError):
                pass
        handle.mark_dead(
            WorkerDiedError(f"worker {worker_id} died ({reason})")
        )
        self.deaths += 1
        self._on_death(handle, reason)
        if self._stop.is_set():
            return
        if handle.revives >= self.config.max_revives:
            handle.state = "ejected"
            self.ejections += 1
            self._on_ejected(handle)
            return
        replacement = WorkerHandle(worker_id, self.config)
        replacement.revives = handle.revives + 1
        try:
            replacement.spawn()
        except ReproError:
            replacement.state = "ejected"
            self.handles[worker_id] = replacement
            self.ejections += 1
            self._on_ejected(replacement)
            return
        self.handles[worker_id] = replacement
        if replacement.sentinel_fd >= 0:
            self._selector.register(
                replacement.sentinel_fd, selectors.EVENT_READ, worker_id
            )
        self.revive_count += 1
        self._on_revived(replacement)

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, object]:
        """Supervision counters for the parent metrics registry."""
        return {
            "workers": len(self.handles),
            "alive": sum(1 for h in self.handles.values() if h.alive),
            "deaths": self.deaths,
            "revives": self.revive_count,
            "ejections": self.ejections,
            "timeouts_swept": self.timeouts_swept,
        }
