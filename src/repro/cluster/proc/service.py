"""`ProcClusterService` — the process tier behind the service API.

The thread tier (:class:`~repro.cluster.ClusterService`) multiplies
*isolation*; this tier multiplies *hardware*: every replica is a real
worker process with its own interpreter (own GIL), fed over the
:mod:`.protocol` frame socket and supervised by
:class:`~repro.cluster.proc.supervisor.ProcSupervisor`.

State flows one way.  The parent keeps a hidden **template**
``CostService`` that never serves requests: ``deploy``/``restore``
mutate the template, its full state is encoded once with the
``repro.persist`` codec, the array blobs are published read-only via
:mod:`multiprocessing.shared_memory` (N workers, one physical copy of
the weights) and each worker installs the manifest over a ``sync``
frame.  Because the persist codec is byte-exact for float64 weights,
a worker's predictions are **bit-identical** to an in-process service
holding the same bundles — asserted by the equivalence tests.

Request routing mirrors the thread tier exactly — rendezvous-hashed
tenant affinity, per-worker admission gates, and the same failure
classification: a dead worker (:class:`~repro.errors.WorkerDiedError`,
a :class:`~repro.errors.ShardDownError`) charges health and fails
over; request-shaped :class:`~repro.errors.ReproError` propagates;
overload sheds without failover; a worker that answers nothing within
the deadline raises :class:`~repro.errors.WorkerTimeoutError` without
failover (it may merely be slow — the supervisor's heartbeat, not the
request path, decides whether it lives).
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ...errors import (
    ClusterError,
    ReproError,
    ShardDownError,
    ShardOverloadError,
    WorkerTimeoutError,
)
from ...obs import EventLog, MetricsRegistry
from ...obs.lockwatch import make_lock
from ...obs.trace import Tracer, current_tracer
from ...persist import BlobStore, encode_state, service_state, write_retained
from ...serving import CostService, EstimatorBundle
from ..admission import AdmissionController
from ..router import ShardRouter
from ..service import ClusterStats
from . import protocol
from .shm import BlobSegment, cleanup_orphans, pack_blobs
from .supervisor import ProcConfig, ProcSupervisor, WorkerHandle


class ProcClusterService:
    """N worker *processes* behind the single-service API."""

    def __init__(
        self,
        worker_count: int = 2,
        worker_ids: Optional[Sequence[str]] = None,
        config: Optional[ProcConfig] = None,
        failure_threshold: int = 3,
        max_inflight_per_worker: int = 64,
        checkpoint_spool=None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        events: Optional[EventLog] = None,
        **service_kwargs,
    ):
        """Spawn the fleet (cold) and start supervision.

        *service_kwargs* are JSON-able ``CostService`` knobs shipped to
        every worker (``cache_capacity``, ``batch_max``, ...); the
        hidden template service is built from the same knobs so the
        state it publishes matches what workers expect.
        *checkpoint_spool* (a directory) enables the persist spool:
        every deploy/restore writes a retained checkpoint there and
        revived workers warm-boot from it before their first sync.
        """
        if worker_ids is None:
            if worker_count < 1:
                raise ClusterError(
                    f"worker_count must be >= 1, got {worker_count}"
                )
            worker_ids = [f"worker-{i}" for i in range(worker_count)]
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EventLog()
        self.tracer = tracer if tracer is not None else current_tracer()
        self.config = config or ProcConfig()
        if service_kwargs:
            merged = dict(self.config.service)
            merged.update(service_kwargs)
            self.config.service = merged
        self._spool = str(checkpoint_spool) if checkpoint_spool else None
        if self._spool and not self.config.checkpoint_dir:
            self.config.checkpoint_dir = self._spool
        #: The hidden state-authority service (never serves requests).
        self.template = CostService(
            metrics=MetricsRegistry(),
            tracer=None,
            **{
                k: v
                for k, v in self.config.service.items()
                if k
                in (
                    "cache_capacity",
                    "batch_max",
                    "batch_window_s",
                    "snapshot_scale",
                )
            },
        )
        self.router = ShardRouter(
            worker_ids, failure_threshold=failure_threshold
        )
        self.stats = ClusterStats(self.router.shard_ids())
        self._admission: Dict[str, AdmissionController] = {
            worker_id: AdmissionController(max_inflight_per_worker)
            for worker_id in self.router.shard_ids()
        }
        self._lock = make_lock("cluster.proc.service")
        self._deployed: List[str] = []
        self._generation = 0
        self._segment: Optional[BlobSegment] = None
        self._current_sync: Optional[Tuple[Dict[str, object], bytes]] = None
        self._closed = False
        cleanup_orphans()
        self.supervisor = ProcSupervisor(
            self.config,
            on_death=self._on_worker_death,
            on_revived=self._on_worker_revived,
            on_ejected=self._on_worker_ejected,
        )
        try:
            for worker_id in self.router.shard_ids():
                handle = WorkerHandle(worker_id, self.config)
                hello = handle.spawn()
                self.supervisor.adopt(handle)
                self.events.emit(
                    "worker_spawned",
                    worker=worker_id,
                    pid=handle.pid,
                    warm=bool(hello.get("warm")),
                )
        except ReproError:
            self.close()
            raise
        self.supervisor.start()
        self._register_collectors()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _register_collectors(self) -> None:
        """Register the tier's sections into :attr:`metrics`:
        ``cluster`` (routing/health/admission, thread-tier shaped),
        ``workers`` (each worker's last pulled counter snapshot folded
        into the parent registry), ``supervisor`` (deaths, revives,
        ejections), ``events`` and — when tracing — ``tracer``."""
        register = self.metrics.register_collector
        register("cluster", self._cluster_section)
        register(
            "workers",
            lambda: {
                worker_id: handle.cached_counters
                for worker_id, handle in sorted(
                    self.supervisor.handles.items()
                )
            },
        )
        register("supervisor", self.supervisor.counters)
        register("events", self.events.counters)
        register(
            "tracer",
            lambda: None if self.tracer is None else self.tracer.counters(),
        )

    def _cluster_section(self) -> Dict[str, object]:
        """The ``cluster`` collector (same shape as the thread tier,
        so :func:`~repro.eval.reporting.render_cluster_report` and the
        bench counters-delta tooling work unchanged)."""
        health = self.router.health()
        routing = self.stats.snapshot()
        routed: Dict[str, int] = routing["routed"]
        per_shard: Dict[str, object] = {}
        shed_total = 0
        for worker_id in sorted(self._admission):
            admission = self._admission[worker_id].counters()
            shed_total += int(admission["shed"])
            handle = self.supervisor.handles.get(worker_id)
            per_shard[worker_id] = {
                "admission": admission,
                "failures": health[worker_id].failures,
                "ejections": health[worker_id].ejections,
                "alive": health[worker_id].alive,
                "routed": routed.get(worker_id, 0),
                "pid": handle.pid if handle is not None else None,
                "state": handle.state if handle is not None else "gone",
            }
        return {
            "routed": routed,
            "reroutes": routing["reroutes"],
            "exhausted": routing["exhausted"],
            "shed": shed_total,
            "ejections": sum(h.ejections for h in health.values()),
            "per_shard": per_shard,
        }

    # ------------------------------------------------------------------
    # state publication
    # ------------------------------------------------------------------
    def _publish(self) -> Tuple[Dict[str, object], bytes]:
        """Encode the template's full state and publish its blobs.

        Returns the ``sync`` payload + tail.  Blobs go through shared
        memory when the host supports it (one copy for N workers); the
        fallback packs them inline in the frame tail — same bytes,
        just not shared.
        """
        state = service_state(self.template)
        store = BlobStore()
        tree = encode_state(state, store)
        with self._lock:
            self._generation += 1
            generation = self._generation
        payload: Dict[str, object] = {
            "manifest": tree,
            "shm": None,
            "generation": generation,
        }
        tail = b""
        segment: Optional[BlobSegment] = None
        if store.blobs:
            try:
                segment = BlobSegment.create(store.blobs, generation)
                payload["shm"] = segment.name
            except ReproError:
                tail = pack_blobs(store.blobs)
        previous, self._segment = self._segment, segment
        self._current_sync = (payload, tail)
        if self._spool:
            write_retained(
                state, self._spool, retain=3, meta={"kind": "cost_service"}
            )
        if previous is not None:
            # POSIX keeps existing worker mappings valid after unlink;
            # the old generation's memory frees as workers re-sync.
            previous.close()
        return payload, tail

    def _sync_worker(self, handle: WorkerHandle) -> None:
        """Install the current published state in *handle*."""
        if self._current_sync is None:
            return
        payload, tail = self._current_sync
        handle.rpc(
            "sync", payload, tail, timeout_s=self.config.sync_timeout_s
        )
        handle.generation = int(payload["generation"])

    def _sync_all(self) -> None:
        """Install the current published state in every live worker."""
        for handle in list(self.supervisor.handles.values()):
            if handle.alive:
                self._sync_worker(handle)

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    def deploy(
        self, bundle: EstimatorBundle, name: Optional[str] = None
    ) -> str:
        """Deploy *bundle* to every worker under *name* (full
        replication, exactly like the thread tier) by updating the
        template and re-publishing its state."""
        key = name or bundle.name
        self.template.deploy(bundle, name=key)
        with self._lock:
            if key not in self._deployed:
                self._deployed.append(key)
        self._publish()
        self._sync_all()
        self.events.emit("bundle_deployed", bundle=key)
        return key

    def deployed_names(self) -> List[str]:
        """Every deployed bundle name, in deployment order."""
        with self._lock:
            return list(self._deployed)

    def _resolve_key(
        self,
        bundle: Optional[str],
        tenant: Optional[str],
        backend: Optional[str] = None,
    ) -> Tuple[str, Optional[str]]:
        """(routing key, bundle name), thread-tier semantics.

        Backend-tagged requests with no explicit bundle defer bundle
        selection to each worker's in-process
        :class:`~repro.serving.routing.BackendRouter` (deterministic,
        so every worker picks the same bundle) and key affinity on the
        tenant or the backend tag — identical to the thread tier.
        """
        if backend is not None and bundle is None:
            return (tenant or f"backend:{backend}"), None
        with self._lock:
            deployed = list(self._deployed)
        if bundle is None:
            if len(deployed) != 1:
                raise ClusterError(
                    "bundle name required when "
                    f"{len(deployed)} bundles are deployed"
                )
            bundle = deployed[0]
        return (tenant or bundle), bundle

    # ------------------------------------------------------------------
    # routing core
    # ------------------------------------------------------------------
    def worker_of(self, tenant: str) -> str:
        """The worker currently serving *tenant* (health-aware)."""
        return self.router.shard_for(tenant)

    def _with_failover(self, key: str, call, release_on_success: bool = True):
        """Run ``call(handle, admission)`` on *key*'s worker, failing
        over down the rendezvous chain under the thread tier's exact
        classification rules (see the module docstring)."""
        tracer = self.tracer
        if tracer is None:
            return self._failover_loop(key, call, release_on_success, None)
        with tracer.start_span("route", kind="route") as span:
            span.annotate(tenant=key, tier="proc")
            return self._failover_loop(key, call, release_on_success, span)

    def _failover_loop(self, key: str, call, release_on_success: bool, span):
        """The retry chain of :meth:`_with_failover`."""
        excluded: Set[str] = set()
        rerouted = False
        last_error: Optional[Exception] = None
        while True:
            try:
                worker_id = self.router.shard_for(key, exclude=excluded)
            except ClusterError:
                self.stats.count_exhausted()
                raise ClusterError(
                    f"request for tenant {key!r} failed on every "
                    "alive worker"
                ) from last_error
            handle = self.supervisor.handles.get(worker_id)
            admission = self._admission[worker_id]
            if not admission.try_acquire():
                self.events.emit(
                    "admission_shed", worker=worker_id, tenant=key
                )
                raise ShardOverloadError(
                    f"worker {worker_id!r} is at its admission limit "
                    f"({admission.max_inflight} in flight); request shed"
                )
            try:
                if handle is None or not handle.alive:
                    raise ShardDownError(
                        f"worker {worker_id!r} is not serving"
                    )
                value = call(handle, admission)
            except WorkerTimeoutError:
                # Slow is not dead: charge health (a wedged worker
                # drifts toward ejection) but never retry elsewhere —
                # the request may still complete on the worker.
                admission.release()
                if self.router.record_failure(worker_id):
                    self.events.emit(
                        "worker_ejected", worker=worker_id, reason="health"
                    )
                raise
            except ShardDownError as exc:
                admission.release()
                if self.router.record_failure(worker_id):
                    self.events.emit(
                        "worker_ejected", worker=worker_id, reason="health"
                    )
                last_error = exc
                excluded.add(worker_id)
                rerouted = True
                continue
            except ReproError:
                admission.release()
                raise
            except Exception as exc:
                admission.release()
                last_error = exc
                excluded.add(worker_id)
                rerouted = True
                continue
            if release_on_success:
                admission.release()
                self.router.record_success(worker_id)
            self.stats.count_routed(worker_id)
            if rerouted:
                self.stats.count_reroute()
            if span is not None:
                span.annotate(worker=worker_id, rerouted=rerouted)
            return value

    # ------------------------------------------------------------------
    # public estimation API (CostService-shaped)
    # ------------------------------------------------------------------
    def estimate(
        self,
        query,
        env,
        bundle: Optional[str] = None,
        tenant: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> float:
        """Estimated latency (ms) of *query* under *env*, served by the
        tenant's worker process (with failover).  A ``backend`` tag
        rides the wire and routes inside the worker exactly as the
        thread tier routes in-process; an unknown tag crosses back as
        a typed :class:`~repro.errors.UnknownBackendError` (request-
        shaped: no health charge, no failover)."""
        key, name = self._resolve_key(bundle, tenant, backend)
        payload = {
            "bundle": name,
            "backend": backend,
            "query": protocol.query_to_wire(query),
            "env": protocol.env_to_wire(env),
        }

        def _call(handle: WorkerHandle, admission) -> float:
            header, _tail = handle.rpc("estimate", payload)
            return float(header["value"])

        return self._with_failover(key, _call)

    def estimate_many(
        self,
        queries: Sequence,
        env,
        bundle: Optional[str] = None,
        batch_size: int = 64,
        tenant: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Batched estimates, routed as one unit to the tenant's
        worker; predictions cross back as raw float64 (bit-exact)."""
        key, name = self._resolve_key(bundle, tenant, backend)
        payload = {
            "bundle": name,
            "backend": backend,
            "queries": [protocol.query_to_wire(q) for q in queries],
            "env": protocol.env_to_wire(env),
            "batch_size": batch_size,
        }

        def _call(handle: WorkerHandle, admission) -> np.ndarray:
            header, tail = handle.rpc("estimate_many", payload)
            return protocol.floats_from_tail(header.get("values"), tail)

        return self._with_failover(key, _call)

    def estimate_async(
        self,
        query,
        env,
        bundle: Optional[str] = None,
        tenant: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> Future:
        """Submit *query* to the tenant's worker; returns a Future.

        Submission fails over like :meth:`estimate`; once the frame is
        on the wire the admission slot rides with the request and is
        released — and worker health judged, thread-tier style — when
        the reply (or the deadline sweeper, or a death) resolves it.
        """
        key, name = self._resolve_key(bundle, tenant, backend)
        payload = {
            "bundle": name,
            "backend": backend,
            "query": protocol.query_to_wire(query),
            "env": protocol.env_to_wire(env),
        }

        def _submit(handle: WorkerHandle, admission) -> Future:
            inner = handle.submit("estimate", payload)
            outer: Future = Future()

            def _resolve(done: Future) -> None:
                admission.release()
                if done.cancelled():
                    outer.cancel()
                    return
                exc = done.exception()
                if exc is None:
                    self.router.record_success(handle.worker_id)
                    header, _tail = done.result()
                    try:
                        outer.set_result(float(header["value"]))
                    except (KeyError, TypeError, ValueError) as bad:
                        outer.set_exception(
                            ClusterError(f"malformed estimate reply: {bad}")
                        )
                    return
                if isinstance(exc, ShardDownError):
                    if self.router.record_failure(handle.worker_id):
                        self.events.emit(
                            "worker_ejected",
                            worker=handle.worker_id,
                            reason="health",
                        )
                outer.set_exception(exc)

            inner.add_done_callback(_resolve)
            return outer

        return self._with_failover(key, _submit, release_on_success=False)

    def record_feedback(
        self,
        query,
        env,
        actual_ms: Optional[float] = None,
        bundle: Optional[str] = None,
        tenant: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> None:
        """Report an actual runtime to the tenant worker's adaptation
        loop (worker-local, exactly like the thread tier's per-shard
        loops)."""
        key, name = self._resolve_key(bundle, tenant, backend)
        payload = {
            "bundle": name,
            "backend": backend,
            "query": protocol.query_to_wire(query),
            "env": protocol.env_to_wire(env),
            "actual_ms": actual_ms,
        }

        def _call(handle: WorkerHandle, admission) -> None:
            handle.rpc("record_feedback", payload)

        self._with_failover(key, _call)

    # ------------------------------------------------------------------
    # worker lifecycle (failure injection + operations)
    # ------------------------------------------------------------------
    def kill_worker(self, worker_id: str) -> None:
        """SIGKILL a worker's real pid; the supervisor's sentinel will
        certify the death and run revive-vs-eject."""
        handle = self._handle(worker_id)
        self.events.emit("worker_killed", worker=worker_id, pid=handle.pid)
        handle.kill()

    def eject(self, worker_id: str) -> None:
        """Remove a worker from routing immediately (operator
        decision; the process keeps running until :meth:`close`)."""
        self.router.eject(worker_id)
        self.events.emit(
            "worker_ejected", worker=worker_id, reason="operator"
        )

    def _handle(self, worker_id: str) -> WorkerHandle:
        handle = self.supervisor.handles.get(worker_id)
        if handle is None:
            raise ClusterError(
                f"unknown worker {worker_id!r} "
                f"(workers: {sorted(self.supervisor.handles)})"
            )
        return handle

    def worker(self, worker_id: str) -> WorkerHandle:
        """The :class:`WorkerHandle` for *worker_id* (introspection)."""
        return self._handle(worker_id)

    def wait_workers(
        self, count: Optional[int] = None, timeout_s: float = 30.0
    ) -> bool:
        """Block until *count* workers (default: all) are up; True on
        success.  Test/ops helper around revive convergence."""
        target = len(self.router.shard_ids()) if count is None else count
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            alive = sum(
                1 for h in self.supervisor.handles.values() if h.alive
            )
            if alive >= target:
                return True
            time.sleep(0.02)
        return False

    # ------------------------------------------------------------------
    # supervisor callbacks (monitor thread)
    # ------------------------------------------------------------------
    def _on_worker_death(self, handle: WorkerHandle, reason: str) -> None:
        """Certified death: pull routing immediately."""
        self.router.eject(handle.worker_id)
        self.events.emit(
            "worker_died", worker=handle.worker_id, reason=reason
        )

    def _on_worker_revived(self, handle: WorkerHandle) -> None:
        """A respawned pid said hello: re-sync state, restore routing."""
        try:
            self._sync_worker(handle)
        except ReproError:
            # The replacement died before installing state; kill it so
            # the sentinel runs the death path (and burns a revive).
            self.events.emit(
                "worker_sync_failed", worker=handle.worker_id
            )
            handle.kill()
            return
        self.router.recover(handle.worker_id)
        self.events.emit(
            "worker_revived", worker=handle.worker_id, pid=handle.pid
        )

    def _on_worker_ejected(self, handle: WorkerHandle) -> None:
        """Revive budget exhausted: the worker is gone for good."""
        self.router.eject(handle.worker_id)
        self.events.emit(
            "worker_ejected", worker=handle.worker_id, reason="revives"
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory, retain: int = 3):
        """Write the template's full state as a retained checkpoint
        under *directory* (the state every worker is serving)."""
        from ...persist import save_service_checkpoint

        return save_service_checkpoint(self.template, directory, retain=retain)

    def restore(self, directory) -> bool:
        """Warm-boot the tier from the newest loadable checkpoint
        under *directory*: restore the template, then re-publish and
        re-sync every worker.  False → cold start (nothing changed)."""
        from ...persist import restore_service_checkpoint

        restored, _path = restore_service_checkpoint(
            self.template, str(directory)
        )
        if not restored:
            return False
        with self._lock:
            self._deployed = self.template.registry.names()
        self._publish()
        self._sync_all()
        self.events.emit("tier_restored", directory=str(directory))
        return True

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, object]:
        """Machine-readable counter snapshot for the whole tier (the
        ``workers`` section folds each worker's own counters, pulled
        over IPC by the supervisor, into this one registry)."""
        return self.metrics.sections_snapshot()

    def report(self) -> str:
        """Human-readable per-worker routing/health/admission report."""
        from ...eval.reporting import render_cluster_report

        cluster = self.metrics.sections_snapshot()["cluster"]
        rows = [
            (
                worker_id,
                "up" if info["alive"] else "down",
                info["routed"],
                info["failures"],
                info["admission"]["shed"],
                info["admission"]["peak_inflight"],
            )
            for worker_id, info in sorted(cluster["per_shard"].items())
        ]
        totals = {
            "reroutes": cluster["reroutes"],
            "exhausted": cluster["exhausted"],
            "ejections": cluster["ejections"],
        }
        return render_cluster_report(rows, totals)

    def close(self) -> None:
        """Retire the fleet: stop supervision, shut workers down
        (gracefully, then by force), unlink shared segments, close the
        template, and sweep any orphaned segments."""
        if self._closed:
            return
        self._closed = True
        if getattr(self, "supervisor", None) is not None:
            self.supervisor.stop()
            for handle in list(self.supervisor.handles.values()):
                if handle.state in ("up", "spawned", "broken"):
                    handle.request_stop()
                else:
                    handle.mark_dead(
                        ShardDownError("tier closed"), kill=True
                    )
        if self._segment is not None:
            self._segment.close()
            self._segment = None
        self.template.close()
        cleanup_orphans()

    def __enter__(self) -> "ProcClusterService":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close` the tier."""
        self.close()
