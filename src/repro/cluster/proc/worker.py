"""The worker process: one ``CostService`` behind an IPC socket.

Launched by the supervisor as ``python -m repro.cluster.proc.worker``
with three pieces of argv state:

- ``--conn-fd`` — the worker end of a ``socketpair`` (inherited fd)
  carrying the frame protocol of :mod:`.protocol`;
- ``--sentinel-fd`` — the write end of a pipe the worker merely holds
  open; the parent polls the read end and sees EOF the instant this
  process dies, however it dies (the classic sentinel-fd trick —
  SIGKILL cannot dodge fd cleanup);
- ``--config`` — a JSON :class:`dict` of service knobs, the optional
  ``checkpoint_dir`` to warm-boot from, and fault-injection hooks
  (``boot_delay_s``) used by the crash tests to freeze a worker in a
  chosen lifecycle phase.

Boot sequence: build the service → warm-boot from the newest loadable
``repro.persist`` checkpoint if a spool directory was given → send a
``hello`` frame (carrying pid and warm/cold verdict) → serve frames
until EOF or a ``shutdown`` frame.  The loop is single-threaded on
purpose: a worker process is one CPU lane, and in-order replies keep
the parent's correlation logic trivial.

Every request is answered — with a ``result`` frame, or with a typed
``error`` frame naming a ``repro.errors`` class.  A framing violation
from the parent is unrecoverable by definition (the stream is out of
sync), so the worker replies with a best-effort protocol error and
exits; the parent's sentinel sees the death and handles it like any
other crash.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import time
from typing import Dict, Optional, Tuple

import numpy as np

from ...errors import ProtocolError, ReproError, ServingError
from ...obs import MetricsRegistry
from ...persist import restore_service_checkpoint
from ...serving.service import CostService
from ...serving.snapshot_store import SnapshotStore
from . import protocol
from .shm import AttachedBlobs, open_state


class WorkerRuntime:
    """Per-process serving state: the service plus IPC bookkeeping."""

    def __init__(self, config: Dict[str, object]):
        """Build the service from *config* (no I/O yet)."""
        self.config = config
        self.worker_id = str(config.get("worker_id", "?"))
        self.metrics = MetricsRegistry()
        self.service = CostService(
            snapshot_store=(
                SnapshotStore() if config.get("snapshot_store", True) else None
            ),
            cache_capacity=int(config.get("cache_capacity", 2048)),
            batch_max=int(config.get("batch_max", 64)),
            batch_window_s=float(config.get("batch_window_s", 0.002)),
            snapshot_scale=int(config.get("snapshot_scale", 8)),
            metrics=self.metrics,
            tracer=None,
        )
        self.started = time.monotonic()
        self.requests = 0
        self.errors = 0
        self.warm_booted = False
        self.sync_generation = -1
        self._attached: Optional[AttachedBlobs] = None

    # ------------------------------------------------------------------
    # boot
    # ------------------------------------------------------------------
    def warm_boot(self) -> None:
        """Restore from the spool checkpoint directory, if configured.

        Never raises: a damaged spool means a cold start (the parent
        re-syncs state over the wire anyway), not a crash loop.
        """
        directory = self.config.get("checkpoint_dir")
        if not directory:
            return
        delay = float(self.config.get("boot_delay_s", 0.0) or 0.0)
        if delay > 0:
            # Fault-injection hook: hold the worker inside the restore
            # phase so crash tests can SIGKILL it mid-restore.
            time.sleep(delay)
        restored, _ = restore_service_checkpoint(self.service, str(directory))
        self.warm_booted = restored

    # ------------------------------------------------------------------
    # request handlers
    # ------------------------------------------------------------------
    def handle(
        self, header: Dict[str, object], tail: bytes
    ) -> Tuple[Dict[str, object], bytes]:
        """Dispatch one request frame; returns the reply frame parts."""
        kind = str(header["kind"])
        handler = getattr(self, f"_on_{kind}", None)
        if handler is None:
            raise ProtocolError(f"unknown request kind {kind!r}")
        return handler(header, tail)

    def _on_ping(self, header, tail):
        """Liveness probe; replies with uptime and request totals."""
        return {
            "value": "pong",
            "pid": os.getpid(),
            "uptime_s": time.monotonic() - self.started,
            "requests": self.requests,
        }, b""

    def _on_delay(self, header, tail):
        """Fault-injection hook: occupy the worker for ``seconds`` so
        tests can SIGKILL it mid-flight or exercise timeouts."""
        time.sleep(float(header.get("seconds", 0.0)))
        return {"value": "delayed"}, b""

    def _on_sync(self, header, tail):
        """Install a full service state published by the parent."""
        tree, store, attached = open_state(header, tail)
        from ...persist import decode_state, restore_service

        state = decode_state(tree, store)
        restore_service(self.service, state)
        # Hold the new mapping for the service's lifetime (the arrays
        # alias it); release the previous generation's mapping.
        previous, self._attached = self._attached, attached
        if previous is not None:
            previous.close()
        self.sync_generation = int(header.get("generation", -1))
        return {
            "value": "synced",
            "generation": self.sync_generation,
            "bundles": self.service.registry.names(),
        }, b""

    def _on_estimate(self, header, tail):
        """One synchronous estimate through the full serving path."""
        env = protocol.env_from_wire(header["env"])
        query = protocol.query_from_wire(header["query"])
        bundle = header.get("bundle")
        backend = header.get("backend")
        value = self.service.estimate(
            query,
            env,
            bundle=str(bundle) if bundle is not None else None,
            backend=str(backend) if backend is not None else None,
        )
        return {"value": value}, b""

    def _on_estimate_many(self, header, tail):
        """A batched estimate; predictions return as raw float64."""
        env = protocol.env_from_wire(header["env"])
        queries = [protocol.query_from_wire(q) for q in header["queries"]]
        bundle = header.get("bundle")
        backend = header.get("backend")
        values = self.service.estimate_many(
            queries,
            env,
            bundle=str(bundle) if bundle is not None else None,
            batch_size=int(header.get("batch_size", 64)),
            backend=str(backend) if backend is not None else None,
        )
        fragment, blob = protocol.floats_to_tail(np.asarray(values))
        return {"values": fragment}, blob

    def _on_record_feedback(self, header, tail):
        """Stream one feedback record into the adaptation loop."""
        env = protocol.env_from_wire(header["env"])
        query = protocol.query_from_wire(header["query"])
        bundle = header.get("bundle")
        backend = header.get("backend")
        actual = header.get("actual_ms")
        self.service.record_feedback(
            query,
            env,
            actual_ms=float(actual) if actual is not None else None,
            bundle=str(bundle) if bundle is not None else None,
            backend=str(backend) if backend is not None else None,
        )
        return {"value": "recorded"}, b""

    def _on_counters(self, header, tail):
        """The worker's full metrics snapshot for parent-side folding."""
        sections = _json_safe(self.service.counters())
        return {
            "value": {
                "pid": os.getpid(),
                "worker_id": self.worker_id,
                "uptime_s": time.monotonic() - self.started,
                "requests": self.requests,
                "errors": self.errors,
                "warm_booted": self.warm_booted,
                "generation": self.sync_generation,
                "sections": sections,
            }
        }, b""

    def _on_shutdown(self, header, tail):
        """Acknowledge; the serve loop exits after this reply."""
        return {"value": "bye"}, b""

    def close(self) -> None:
        """Release the service and any attached shared mapping."""
        self.service.close()
        if self._attached is not None:
            self._attached.close()
            self._attached = None


def _json_safe(value: object) -> object:
    """Counters snapshots may hold numpy scalars; fold to JSON types."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def serve(conn: socket.socket, runtime: WorkerRuntime) -> int:
    """The frame loop: recv → handle → reply, until EOF/shutdown.

    Returns the process exit code.  ``ReproError`` from a handler
    becomes a typed error frame and the loop continues; an unexpected
    exception becomes an error frame too but is considered fatal — the
    worker's internal state is suspect, so it exits and lets the
    supervisor decide between revive and eject.
    """
    while True:
        try:
            frame = protocol.recv_frame(conn)
        except ReproError:
            # Out-of-sync stream: unrecoverable by definition.  Tell
            # the parent (best effort) and die; the sentinel fd turns
            # this into a normal death for the supervisor.
            runtime.errors += 1
            _send_error(conn, 0, ProtocolError("worker lost frame sync"))
            return 2
        if frame is None:
            return 0  # parent closed the connection: clean retirement
        header, tail = frame
        request_id = int(header["id"])
        runtime.requests += 1
        try:
            payload, blob = runtime.handle(header, tail)
        except ReproError as exc:
            runtime.errors += 1
            _send_error(conn, request_id, exc)
            continue
        except Exception as exc:  # noqa: BLE001 — fatal, reported typed
            runtime.errors += 1
            _send_error(
                conn,
                request_id,
                ServingError(f"worker failed unexpectedly: {exc!r}"),
            )
            return 3
        reply = {"id": request_id, "kind": "result", **payload}
        try:
            protocol.send_frame(conn, reply, blob)
        except ReproError:
            return 0  # parent went away; nothing left to serve
        if header.get("kind") == "shutdown":
            return 0


def _send_error(conn: socket.socket, request_id: int, exc: ReproError) -> None:
    """Best-effort typed error reply (send failures are moot here)."""
    try:
        protocol.send_frame(
            conn,
            {
                "id": request_id,
                "kind": "error",
                "error": protocol.error_to_wire(exc),
            },
        )
    except ReproError:
        pass  # connection already gone; the error dies with it


def main(argv=None) -> int:
    """Entry point for ``python -m repro.cluster.proc.worker``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--conn-fd", type=int, required=True)
    parser.add_argument("--sentinel-fd", type=int, required=True)
    parser.add_argument("--config", type=str, default="{}")
    args = parser.parse_args(argv)

    # The sentinel fd is never written: the parent detects EOF on its
    # read end when this process exits.  Keeping the integer alive in
    # a local is all that is required.
    sentinel_fd = args.sentinel_fd
    try:
        config = json.loads(args.config)
    except json.JSONDecodeError:
        return 2
    conn = socket.socket(fileno=args.conn_fd)
    runtime = WorkerRuntime(config)
    runtime.warm_boot()
    protocol.send_frame(
        conn,
        {
            "id": 0,
            "kind": "hello",
            "pid": os.getpid(),
            "sentinel_fd": sentinel_fd,
            "warm": runtime.warm_booted,
        },
    )
    try:
        return serve(conn, runtime)
    finally:
        runtime.close()
        try:
            conn.close()
        except OSError:
            pass


if __name__ == "__main__":  # pragma: no cover - exercised via Popen
    sys.exit(main())
