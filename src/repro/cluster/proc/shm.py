"""Read-only model-weight publication over POSIX shared memory.

The parent encodes service state once (``repro.persist`` codec), packs
every array blob into a single ``multiprocessing.shared_memory``
segment, and ships only the segment *name* to workers.  N workers then
hold **one** physical copy of the weights: each worker maps the
segment read-only and its :class:`SharedBlobStore` materialises arrays
as zero-copy ``np.frombuffer`` views over the mapping.

Segment layout (all integers little-endian)::

    u32 magic ("QFSM") | u32 count | u64 index_len | index JSON | blobs

where the index JSON is ``{"lengths": [...], "offsets": [...]}``
relative to the payload region, making every segment self-describing:
an attacher needs nothing but the name.

Lifecycle and crash hygiene:

- the **parent** owns create and unlink.  Names embed the owning pid
  (``qcfe-shm-<pid>-<seq>-<token>``) so ownership is decidable post
  mortem.
- **workers** never attach through ``SharedMemory(name=...)`` on the
  primary path: before Python 3.13 the resource tracker unlinks
  attached segments at interpreter exit, which would tear the weights
  out from under sibling workers.  They map ``/dev/shm/<name>``
  directly (with a tracker-unregistered ``SharedMemory`` fallback for
  hosts without a ``/dev/shm``).
- a SIGKILLed parent cannot unlink; :func:`cleanup_orphans` sweeps
  segments whose embedded owner pid is dead, and the supervisor runs
  it on every start and close.
"""

from __future__ import annotations

import json
import mmap
import os
import secrets
import struct
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...errors import CheckpointCorruptError, CheckpointError, ProtocolError
from ...persist import BlobStore

#: Name prefix for every segment this module creates.
SEGMENT_PREFIX = "qcfe-shm"

#: Segment header: magic, blob count, index length.
_HEADER = struct.Struct("<4sIQ")

#: Magic marking a segment this module laid out.
_SHM_MAGIC = b"QFSM"

#: Where POSIX shared memory appears as files on Linux.
_DEV_SHM = "/dev/shm"


def segment_name(seq: int, owner_pid: Optional[int] = None) -> str:
    """A fresh segment name embedding the owning pid and a random
    token (two services in one process never collide)."""
    pid = os.getpid() if owner_pid is None else owner_pid
    return f"{SEGMENT_PREFIX}-{pid}-{seq}-{secrets.token_hex(4)}"


def owner_pid_of(name: str) -> Optional[int]:
    """The owner pid embedded in *name*, or None when *name* is not
    one of ours."""
    if not name.startswith(SEGMENT_PREFIX + "-"):
        return None
    parts = name[len(SEGMENT_PREFIX) + 1 :].split("-")
    try:
        return int(parts[0])
    except (IndexError, ValueError):
        return None


def _pid_alive(pid: int) -> bool:
    """True when *pid* names a live process we can see."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def pack_blobs(blobs: Sequence[bytes]) -> bytes:
    """The self-describing segment image for *blobs*."""
    lengths = [len(blob) for blob in blobs]
    offsets: List[int] = []
    cursor = 0
    for length in lengths:
        offsets.append(cursor)
        cursor += length
    index = json.dumps(
        {"lengths": lengths, "offsets": offsets}, separators=(",", ":")
    ).encode("utf-8")
    header = _HEADER.pack(_SHM_MAGIC, len(blobs), len(index))
    return b"".join([header, index, *blobs])


def unpack_index(buf) -> Tuple[List[int], List[int], int]:
    """``(lengths, offsets, payload_start)`` from a segment image.

    Raises :class:`~repro.errors.CheckpointCorruptError` on a segment
    that was not laid out by :func:`pack_blobs` (or was truncated).
    """
    if len(buf) < _HEADER.size:
        raise CheckpointCorruptError(
            f"shared segment holds {len(buf)} bytes, header needs "
            f"{_HEADER.size}"
        )
    magic, count, index_len = _HEADER.unpack_from(buf, 0)
    if magic != _SHM_MAGIC:
        raise CheckpointCorruptError(f"bad shared-segment magic {magic!r}")
    start = _HEADER.size + index_len
    if start > len(buf):
        raise CheckpointCorruptError("shared-segment index truncated")
    try:
        index = json.loads(bytes(buf[_HEADER.size : start]).decode("utf-8"))
        lengths = [int(n) for n in index["lengths"]]
        offsets = [int(n) for n in index["offsets"]]
    except (UnicodeDecodeError, ValueError, KeyError, TypeError) as exc:
        raise CheckpointCorruptError(
            f"unparseable shared-segment index: {exc}"
        ) from exc
    if len(lengths) != count or len(offsets) != count:
        raise CheckpointCorruptError(
            f"shared-segment index describes {len(lengths)} blobs, "
            f"header says {count}"
        )
    for length, offset in zip(lengths, offsets):
        if length < 0 or offset < 0 or start + offset + length > len(buf):
            raise CheckpointCorruptError(
                "shared-segment blob extent exceeds the mapping"
            )
    return lengths, offsets, start


class BlobSegment:
    """Parent-side handle on one published segment (create + unlink)."""

    def __init__(self, name: str, shm, size: int):
        """Wrap an already-created ``SharedMemory`` *shm*."""
        self.name = name
        self.size = size
        self._shm = shm

    @classmethod
    def create(cls, blobs: Sequence[bytes], seq: int) -> "BlobSegment":
        """Publish *blobs* as a fresh read-only-by-convention segment."""
        from multiprocessing import shared_memory

        image = pack_blobs(blobs)
        name = segment_name(seq)
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(len(image), 1)
            )
            shm.buf[: len(image)] = image
        except OSError as exc:
            raise CheckpointError(
                f"cannot publish shared segment {name!r}: {exc}"
            ) from exc
        return cls(name, shm, len(image))

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
            shm.unlink()
        except (OSError, FileNotFoundError):
            pass

    def __enter__(self) -> "BlobSegment":
        """Context-manager entry."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Unlink on scope exit."""
        self.close()


class AttachedBlobs:
    """Worker-side read-only view over a published segment."""

    def __init__(self, name: str, buf, closer):
        """Wrap mapping *buf* of segment *name*; *closer* releases it."""
        self.name = name
        self._buf = buf
        self._closer = closer
        lengths, offsets, start = unpack_index(buf)
        self.views: List[memoryview] = [
            memoryview(buf)[start + offset : start + offset + length]
            for length, offset in zip(lengths, offsets)
        ]

    @classmethod
    def attach(cls, name: str) -> "AttachedBlobs":
        """Map segment *name* read-only without registering it with the
        resource tracker (see the module docstring for why)."""
        path = os.path.join(_DEV_SHM, name)
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return cls._attach_fallback(name)
        try:
            size = os.fstat(fd).st_size
            buf = mmap.mmap(fd, size, prot=mmap.PROT_READ)
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"cannot map shared segment {name!r}: {exc}"
            ) from exc
        finally:
            os.close(fd)
        return cls(name, buf, buf.close)

    @classmethod
    def _attach_fallback(cls, name: str) -> "AttachedBlobs":
        """Attach via ``SharedMemory`` on hosts without ``/dev/shm``,
        unregistering from the resource tracker so interpreter exit
        does not unlink a segment the parent still owns."""
        from multiprocessing import resource_tracker, shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name)
        except (OSError, FileNotFoundError) as exc:
            raise CheckpointError(
                f"shared segment {name!r} is gone: {exc}"
            ) from exc
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except (OSError, KeyError, AttributeError, ValueError):
            pass  # tracker may be absent; the mapping is still valid
        return cls(name, shm.buf, shm.close)

    def close(self) -> None:
        """Release every view and the underlying mapping (idempotent).

        Decoded state may still hold zero-copy arrays over the
        mapping; in that case the OS keeps the pages alive until the
        last array dies (or the process exits), so a refused unmap is
        tolerated, not an error.
        """
        views, self.views = self.views, []
        for view in views:
            try:
                view.release()
            except BufferError:
                pass
        closer, self._closer = self._closer, None
        if closer is not None:
            try:
                closer()
            except BufferError:
                pass


class SharedBlobStore(BlobStore):
    """A :class:`~repro.persist.BlobStore` whose arrays are zero-copy
    read-only views over an attached segment.

    ``get`` skips the base class's defensive ``.copy()``: the arrays
    returned here alias the shared mapping, which is exactly the
    point — N workers, one physical copy.  The mapping is read-only,
    so the views are non-writeable; code that needs to mutate restored
    weights (warm-retrain) already deep-copies first.
    """

    def __init__(self, attached: AttachedBlobs):
        """Expose *attached*'s views through the BlobStore interface."""
        super().__init__(attached.views)  # type: ignore[arg-type]
        self._attached = attached

    def get(self, ref: Mapping[str, object]) -> np.ndarray:
        """The array behind *ref* as a zero-copy read-only view."""
        try:
            spec = dict(ref["__ndarray__"])
            index = int(spec["blob"])
            dtype = np.dtype(str(spec["dtype"]))
            shape = tuple(int(dim) for dim in spec["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed array reference {ref!r}") from exc
        if not 0 <= index < len(self.blobs):
            raise CheckpointCorruptError(
                f"array reference points at blob {index}, "
                f"segment has {len(self.blobs)}"
            )
        view = self.blobs[index]
        expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if len(view) != expected:
            raise CheckpointCorruptError(
                f"blob {index} holds {len(view)} bytes, "
                f"dtype/shape require {expected}"
            )
        return np.frombuffer(view, dtype=dtype).reshape(shape)


def list_segments() -> List[str]:
    """Names of every currently-linked segment this module created
    (empty when the host exposes no ``/dev/shm``)."""
    try:
        names = os.listdir(_DEV_SHM)
    except OSError:
        return []
    return sorted(n for n in names if n.startswith(SEGMENT_PREFIX + "-"))


def cleanup_orphans() -> List[str]:
    """Unlink segments whose embedded owner pid is dead; returns the
    names removed.  Safe to call concurrently (already-gone segments
    are skipped, not errors)."""
    removed: List[str] = []
    for name in list_segments():
        pid = owner_pid_of(name)
        if pid is None or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_DEV_SHM, name))
        except OSError:
            continue
        removed.append(name)
    return removed


def publish_state(tree: object, blobs: Sequence[bytes], seq: int) -> Tuple[
    Dict[str, object], Optional[BlobSegment]
]:
    """Pack an encoded state tree for the wire: returns the ``sync``
    header payload plus the segment handle the parent must keep (None
    when there are no array blobs to share)."""
    if not blobs:
        return {"manifest": tree, "shm": None}, None
    segment = BlobSegment.create(blobs, seq)
    return {"manifest": tree, "shm": segment.name}, segment


def open_state(payload: Mapping[str, object], tail: bytes) -> Tuple[
    object, BlobStore, Optional[AttachedBlobs]
]:
    """Worker-side inverse of :func:`publish_state`.

    Returns ``(manifest tree, blob store, attached mapping or None)``;
    the caller owns closing the mapping once the decoded state no
    longer needs it.  When the payload carries no segment name the
    blobs arrive inline in *tail* (packed with :func:`pack_blobs`) —
    the sockets-only fallback path.
    """
    if "manifest" not in payload:
        raise ProtocolError("sync payload lacks 'manifest'")
    tree = payload["manifest"]
    name = payload.get("shm")
    if name is None:
        if tail:
            lengths, offsets, start = unpack_index(tail)
            blobs = [
                tail[start + offset : start + offset + length]
                for length, offset in zip(lengths, offsets)
            ]
            return tree, BlobStore(blobs), None
        return tree, BlobStore([]), None
    attached = AttachedBlobs.attach(str(name))
    return tree, SharedBlobStore(attached), attached
