"""Tenant-to-shard routing: rendezvous hashing plus health tracking.

The router answers one question — *which replica serves this tenant?* —
with two properties the cluster tier leans on:

- **Determinism across processes.** Scores come from ``blake2b`` over
  ``tenant + shard id``, never from Python's per-process-salted
  ``hash()``, so every router instance (in any process, on any run)
  agrees on the mapping.  Caches stay warm because a tenant always
  lands on the same replica.
- **Minimal disruption (the rendezvous property).** Each tenant ranks
  *all* shards by score and takes the best alive one.  Ejecting a
  shard therefore moves only the tenants whose best shard it was —
  every other tenant keeps its replica (and its warm caches) —
  and recovery restores exactly the original mapping.

Health is tracked per shard: consecutive failures past a threshold
eject the shard from routing, and an explicit
:meth:`ShardRouter.recover` returns it.  A success only resets the
failure streak of a still-routable shard — ejected shards receive no
traffic, so recovery is an operator/probe decision, never implicit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..errors import ClusterError
from ..obs.lockwatch import make_lock


def rendezvous_score(tenant: str, shard_id: str) -> int:
    """Deterministic 64-bit score of (*tenant*, *shard_id*).

    ``blake2b`` keeps the mapping identical across processes and
    Python versions (``hash()`` is salted per process and would
    reshuffle every tenant on restart, stone-cold caches included).
    """
    digest = hashlib.blake2b(
        tenant.encode("utf-8") + b"\x00" + shard_id.encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass
class ShardHealth:
    """One shard's failure-tracking state (mutated under the router lock)."""

    shard_id: str
    alive: bool = True
    consecutive_failures: int = 0
    failures: int = 0
    ejections: int = 0


class ShardRouter:
    """Consistent (rendezvous / HRW) tenant routing over named shards.

    Thread-safe: routing reads and health writes share one lock, so a
    concurrent ejection never hands two callers different views of the
    same preference scan.
    """

    def __init__(self, shard_ids: Sequence[str], failure_threshold: int = 3):
        """Route over *shard_ids*, ejecting a shard after
        *failure_threshold* consecutive failures."""
        ids = list(shard_ids)
        if not ids:
            raise ClusterError("a ShardRouter needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ClusterError(f"duplicate shard ids: {sorted(ids)}")
        if failure_threshold < 1:
            raise ClusterError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self._lock = make_lock("cluster.router")
        self._health: Dict[str, ShardHealth] = {
            shard_id: ShardHealth(shard_id) for shard_id in ids
        }
        #: Stable shard order (registration order) for introspection.
        self._shard_ids = ids
        #: Tenant -> ranked shard list.  The shard-id set is fixed at
        #: construction, so a tenant's ranking never changes; caching
        #: it keeps the per-request O(shards) hashing (and sort) off
        #: the routing hot path.  Bounded: cleared wholesale if an
        #: adversarial tenant-name stream would otherwise grow it.
        self._preference_cache: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def preference(self, tenant: str) -> List[str]:
        """Every shard, best-scoring first, ignoring health.

        The alive prefix of this list is the tenant's failover chain:
        requests try index 0, then 1, and so on.  Ties (possible only
        by hash collision) break on shard id so the order stays total.
        """
        return list(self._ranked(tenant))

    def _ranked(self, tenant: str) -> List[str]:
        """The cached ranking for *tenant* (callers must not mutate).

        Hashing happens outside the router lock — the ranking is a
        pure function of (tenant, shard-id set) — so concurrent
        routing only serializes on the short alive-check scan.
        """
        cached = self._preference_cache.get(tenant)
        if cached is not None:
            return cached
        ranked = sorted(
            self._shard_ids,
            key=lambda shard_id: (-rendezvous_score(tenant, shard_id), shard_id),
        )
        with self._lock:
            if len(self._preference_cache) >= 65536:
                self._preference_cache.clear()
            return self._preference_cache.setdefault(tenant, ranked)

    def shard_for(
        self, tenant: str, exclude: Optional[Set[str]] = None
    ) -> str:
        """The best alive shard for *tenant* (skipping *exclude*)."""
        ranked = self._ranked(tenant)
        with self._lock:
            for shard_id in ranked:
                if exclude and shard_id in exclude:
                    continue
                if self._health[shard_id].alive:
                    return shard_id
        raise ClusterError(
            f"no alive shard for tenant {tenant!r} "
            f"(shards: {sorted(self._shard_ids)}, excluded: {sorted(exclude or ())})"
        )

    def alive(self) -> List[str]:
        """Shard ids currently in the routing pool, registration-ordered."""
        with self._lock:
            return [s for s in self._shard_ids if self._health[s].alive]

    def shard_ids(self) -> List[str]:
        """All shard ids (alive or not), registration-ordered."""
        return list(self._shard_ids)

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def record_success(self, shard_id: str) -> None:
        """Reset *shard_id*'s consecutive-failure streak."""
        with self._lock:
            self._state(shard_id).consecutive_failures = 0

    def record_failure(self, shard_id: str) -> bool:
        """Count one failure on *shard_id*; returns True when this
        failure crossed the threshold and ejected the shard."""
        with self._lock:
            state = self._state(shard_id)
            state.failures += 1
            state.consecutive_failures += 1
            if state.alive and state.consecutive_failures >= self.failure_threshold:
                state.alive = False
                state.ejections += 1
                return True
            return False

    def eject(self, shard_id: str) -> None:
        """Remove *shard_id* from routing immediately (operator action
        or a probe that knows the replica is gone)."""
        with self._lock:
            state = self._state(shard_id)
            if state.alive:
                state.alive = False
                state.ejections += 1

    def recover(self, shard_id: str) -> None:
        """Return *shard_id* to the routing pool with a clean streak.

        By the rendezvous property, exactly the tenants that preferred
        it before the ejection move back; nobody else is touched.
        """
        with self._lock:
            state = self._state(shard_id)
            state.alive = True
            state.consecutive_failures = 0

    def is_alive(self, shard_id: str) -> bool:
        """Whether *shard_id* is currently routable."""
        with self._lock:
            return self._state(shard_id).alive

    def health(self) -> Dict[str, ShardHealth]:
        """A point-in-time copy of every shard's health record."""
        with self._lock:
            return {
                shard_id: ShardHealth(
                    shard_id=state.shard_id,
                    alive=state.alive,
                    consecutive_failures=state.consecutive_failures,
                    failures=state.failures,
                    ejections=state.ejections,
                )
                for shard_id, state in self._health.items()
            }

    def _state(self, shard_id: str) -> ShardHealth:
        try:
            return self._health[shard_id]
        except KeyError:
            raise ClusterError(
                f"unknown shard {shard_id!r} (shards: {sorted(self._shard_ids)})"
            ) from None

    def __len__(self) -> int:
        """Total shard count, alive or not."""
        return len(self._shard_ids)


__all__ = ["ShardHealth", "ShardRouter", "rendezvous_score"]
