"""repro.cluster — the sharded, multi-replica serving tier.

Scales :class:`~repro.serving.CostService` horizontally while keeping
its API:

- :class:`ShardRouter` — rendezvous (HRW) hashing of tenants across
  replicas: deterministic across processes, and an ejection moves
  only the ejected shard's tenants;
- :class:`AdmissionController` — bounded per-shard in-flight depth
  with load shedding and a shed counter, so overload degrades
  predictably instead of collapsing a replica;
- :class:`ClusterService` — the facade: N independent ``CostService``
  replicas (own registry, caches, batcher, adaptation loop) behind
  the same ``estimate`` / ``estimate_many`` / ``estimate_async`` /
  ``record_feedback`` / ``report`` surface, with per-shard health
  tracking, failure ejection and failover re-routing;
- :class:`ProcClusterService` (:mod:`repro.cluster.proc`) — the same
  facade over real worker *processes*: per-pid ``CostService``
  replicas behind a length-prefixed IPC protocol, model weights
  shared read-only via ``multiprocessing.shared_memory``, and a
  supervisor that spawns/kills/revives/ejects pids with sentinel-fd
  death detection.

See ``docs/ARCHITECTURE.md`` for where this sits in the request
lifecycle and ``docs/SERVING.md`` for operational guarantees.
"""

from .admission import AdmissionController
from .proc import ProcClusterService, ProcConfig
from .router import ShardHealth, ShardRouter, rendezvous_score
from .service import ClusterService, ClusterShard, ClusterStats

__all__ = [
    "AdmissionController",
    "ClusterService",
    "ClusterShard",
    "ClusterStats",
    "ProcClusterService",
    "ProcConfig",
    "ShardHealth",
    "ShardRouter",
    "rendezvous_score",
]
