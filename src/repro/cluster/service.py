"""The sharded, multi-replica serving tier behind one service API.

A single :class:`~repro.serving.CostService` owns every tenant: one
hot tenant saturates the batcher, the caches and the refit worker for
all of them.  :class:`ClusterService` is the horizontal answer — N
independent ``CostService`` replicas (each with its own registry,
caches, micro-batchers and adaptation loop), a
:class:`~repro.cluster.router.ShardRouter` consistent-hashing tenants
across them, and per-shard :class:`~repro.cluster.admission.AdmissionController`
gates so overload sheds at the door instead of collapsing the replica.

The facade speaks the same ``estimate`` / ``estimate_many`` /
``estimate_async`` / ``record_feedback`` / ``report`` API as a single
service, so the load generator, the bench scenarios and application
code cannot tell one replica from eight.  What they *can* observe:

- **Tenant affinity.** A tenant (its bundle name by default) always
  lands on the same shard, keeping that shard's feature cache and
  snapshot store warm for it.
- **Failover.** A request that fails on its shard is retried on the
  tenant's next-preferred replica; repeated failures eject the shard
  from routing, and by the rendezvous property only the ejected
  shard's tenants move.
- **Predictable overload.** A full shard sheds new requests
  immediately (:class:`~repro.errors.ShardOverloadError`, counted),
  rather than queueing them into a latency cliff — and never spills
  a hot tenant's overload onto other tenants' replicas.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import (
    ClusterError,
    ReproError,
    ShardDownError,
    ShardOverloadError,
)
from ..obs import EventLog, MetricsRegistry
from ..obs.lockwatch import make_lock
from ..obs.trace import Tracer, current_tracer
from ..serving import CostService, EstimatorBundle
from .admission import AdmissionController
from .router import ShardRouter

#: Builds one replica; receives the shard id (for naming/logging).
ServiceFactory = Callable[[str], CostService]


class ClusterShard:
    """One replica: a shard id, its service, and its admission gate."""

    def __init__(
        self, shard_id: str, service: CostService, max_inflight: int
    ):
        """Wrap *service* as shard *shard_id* admitting *max_inflight*."""
        self.shard_id = shard_id
        self.service = service
        self.admission = AdmissionController(max_inflight)
        #: Simulates (or records) a crashed replica: requests fail at
        #: the shard boundary without touching the service.
        self.killed = False

    def check_up(self) -> None:
        """Raise :class:`ShardDownError` when the replica is killed."""
        if self.killed:
            raise ShardDownError(f"shard {self.shard_id!r} is down")


class ClusterStats:
    """Cluster-level routing counters (shard-local counts live on the
    shards' own admission controllers and services)."""

    def __init__(self, shard_ids: Sequence[str]):
        """Zeroed counters over *shard_ids*."""
        self._lock = make_lock("cluster.stats")
        self._routed: Dict[str, int] = {shard_id: 0 for shard_id in shard_ids}
        self.reroutes = 0
        self.exhausted = 0

    def count_routed(self, shard_id: str) -> None:
        """One request routed to *shard_id* (sync: served to
        completion; async: successfully submitted — its outcome
        resolves later on the Future)."""
        with self._lock:
            self._routed[shard_id] = self._routed.get(shard_id, 0) + 1

    def count_reroute(self) -> None:
        """One request retried on a different shard after a failure."""
        with self._lock:
            self.reroutes += 1

    def count_exhausted(self) -> None:
        """One request that failed on every alive shard."""
        with self._lock:
            self.exhausted += 1

    def snapshot(self) -> Dict[str, object]:
        """Atomic plain-dict copy of the routing counters."""
        with self._lock:
            return {
                "routed": dict(self._routed),
                "reroutes": self.reroutes,
                "exhausted": self.exhausted,
            }


class ClusterService:
    """N ``CostService`` replicas behind the single-service API."""

    def __init__(
        self,
        shard_count: int = 2,
        shard_ids: Optional[Sequence[str]] = None,
        service_factory: Optional[ServiceFactory] = None,
        failure_threshold: int = 3,
        max_inflight_per_shard: int = 512,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        events: Optional[EventLog] = None,
        **service_kwargs,
    ):
        """Build the tier.

        *service_factory* creates each replica (default: a plain
        ``CostService(**service_kwargs)``).  Pass a factory when each
        shard needs its own ``SnapshotStore`` or adaptation config —
        anything passed through *service_kwargs* directly is shared by
        every replica.  *failure_threshold* consecutive failures eject
        a shard from routing; *max_inflight_per_shard* bounds each
        replica's concurrent admissions (excess is shed).

        The tier owns one :class:`~repro.obs.MetricsRegistry` (its
        ``cluster``/``shards`` sections back :meth:`counters` and
        :meth:`report`), one :class:`~repro.obs.EventLog` (shard
        kills/ejections/revivals/restarts, admission sheds) and —
        when tracing — one :class:`~repro.obs.Tracer` shared with every
        replica, so a routing hop span and the shard-side request span
        land in the same trace.
        """
        if shard_ids is None:
            if shard_count < 1:
                raise ClusterError(
                    f"shard_count must be >= 1, got {shard_count}"
                )
            shard_ids = [f"shard-{i}" for i in range(shard_count)]
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EventLog()
        self.tracer = tracer if tracer is not None else current_tracer()
        base_factory: ServiceFactory = service_factory or (
            lambda shard_id: CostService(**service_kwargs)
        )

        def factory(shard_id: str) -> CostService:
            """Build a replica tracing into the cluster's tracer
            (unless the custom factory wired one up itself), so
            routing spans parent the shard-side request spans."""
            service = base_factory(shard_id)
            if service.tracer is None and self.tracer is not None:
                service.tracer = self.tracer
            return service

        self.router = ShardRouter(shard_ids, failure_threshold=failure_threshold)
        #: Kept for replica replacement: :meth:`restart_shard` builds
        #: the replacement service exactly like the original.
        self._factory = factory
        self._max_inflight = max_inflight_per_shard
        self._shards: Dict[str, ClusterShard] = {
            shard_id: ClusterShard(
                shard_id, factory(shard_id), max_inflight_per_shard
            )
            for shard_id in self.router.shard_ids()
        }
        self.stats = ClusterStats(self.router.shard_ids())
        self._lock = make_lock("cluster.service")
        self._deployed: List[str] = []
        #: Last-deployed bundle object per name: a cold replica restart
        #: re-deploys these when no checkpoint (or a dead one) is
        #: available.
        self._bundle_objects: Dict[str, EstimatorBundle] = {}
        self._register_collectors()

    def _register_collectors(self) -> None:
        """Register the tier's sections into :attr:`metrics`:
        ``cluster`` (routing/health/admission), ``shards`` (each
        replica's full :meth:`~repro.serving.CostService.counters`),
        ``events`` and — when tracing — ``tracer``."""
        register = self.metrics.register_collector
        register("cluster", self._cluster_section)
        register(
            "shards",
            lambda: {
                shard_id: shard.service.counters()
                for shard_id, shard in sorted(self._shards.items())
            },
        )
        register("events", self.events.counters)
        register(
            "tracer",
            lambda: None if self.tracer is None else self.tracer.counters(),
        )

    def _cluster_section(self) -> Dict[str, object]:
        """The ``cluster`` collector: routing totals plus per-shard
        health/admission/liveness (the data :meth:`report` renders)."""
        health = self.router.health()
        routing = self.stats.snapshot()
        routed: Dict[str, int] = routing["routed"]
        per_shard: Dict[str, object] = {}
        shed_total = 0
        for shard_id, shard in sorted(self._shards.items()):
            admission = shard.admission.counters()
            shed_total += int(admission["shed"])
            per_shard[shard_id] = {
                "admission": admission,
                "failures": health[shard_id].failures,
                "ejections": health[shard_id].ejections,
                "alive": health[shard_id].alive,
                "routed": routed.get(shard_id, 0),
            }
        return {
            "routed": routed,
            "reroutes": routing["reroutes"],
            "exhausted": routing["exhausted"],
            "shed": shed_total,
            "ejections": sum(h.ejections for h in health.values()),
            "per_shard": per_shard,
        }

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    def deploy(
        self, bundle: EstimatorBundle, name: Optional[str] = None
    ) -> str:
        """Deploy *bundle* to **every** shard under *name*.

        Full replication is what makes failover trivial: any shard can
        serve any tenant, so a re-routed request needs no state
        transfer — it just pays a cold cache on the new replica.
        Returns the deployed name (the routing key for this tenant).
        """
        key = name or bundle.name
        for shard in self._shards.values():
            shard.service.deploy(bundle, name=key)
        with self._lock:
            if key not in self._deployed:
                self._deployed.append(key)
            # Retain the bundle normalized to its routing key: an
            # aliased deploy (name != bundle.name) must not leave a
            # stale name on the retained copy, or a replica restart
            # would re-deploy it under cache/event/persist identities
            # that diverge from the key every live replica serves.
            self._bundle_objects[key] = (
                bundle if bundle.name == key else replace(bundle, name=key)
            )
        return key

    def deployed_names(self) -> List[str]:
        """Every deployed bundle name, in deployment order."""
        with self._lock:
            return list(self._deployed)

    def _resolve_key(
        self,
        bundle: Optional[str],
        tenant: Optional[str],
        backend: Optional[str] = None,
    ) -> Tuple[str, Optional[str]]:
        """(routing key, bundle name) for a request.

        The routing key defaults to the bundle name — tenants are
        bundles unless the caller says otherwise — and a missing
        bundle name falls back to the sole deployment, mirroring
        ``CostService`` semantics.

        A backend-tagged request with no explicit bundle leaves bundle
        selection to the shard service's
        :class:`~repro.serving.routing.BackendRouter` (every replica
        resolves identically) and keys shard affinity on the tenant,
        falling back to the backend tag itself — so one backend's
        traffic stays on one warm replica by default.
        """
        if backend is not None and bundle is None:
            return (tenant or f"backend:{backend}"), None
        with self._lock:
            deployed = list(self._deployed)
        if bundle is None:
            if len(deployed) != 1:
                raise ClusterError(
                    "bundle name required when "
                    f"{len(deployed)} bundles are deployed"
                )
            bundle = deployed[0]
        return (tenant or bundle), bundle

    # ------------------------------------------------------------------
    # routing core
    # ------------------------------------------------------------------
    def shard_of(self, tenant: str) -> str:
        """The shard currently serving *tenant* (health-aware)."""
        return self.router.shard_for(tenant)

    def _with_failover(self, key: str, call, release_on_success: bool = True):
        """Run ``call(shard)`` on *key*'s shard, failing over down the
        tenant's rendezvous preference chain.

        ``release_on_success=False`` transfers ownership of the
        admission slot *and* of success/failure health recording to the
        successful ``call`` (the async path holds the slot, and judges
        health, at Future resolution — recording a submission as a
        success here would reset the failure streak before the
        previous future's verdict arrived, and a sick replica would
        never accumulate enough consecutive failures to be ejected).
        Every failure path still releases and records here.

        Failures are classified, because retrying the wrong ones is
        worse than not retrying:

        - **Replica failures** (:class:`ShardDownError`) record a
          health failure — ejecting the shard at the threshold — and
          retry on the next alive replica: a mid-run crash costs
          re-routed requests a cache warm-up, not an error.
        - **Unexpected exceptions** (a ``TypeError`` from a malformed
          query object, a numpy shape error) also retry on the next
          replica — cheap, bounded, and it rescues transient
          replica-local corruption — but do *not* charge shard
          health: they may be deterministic request poison, and a
          poison request must never eject replicas (only
          :class:`ShardDownError`, which the cluster itself raises
          for a dead replica, is unambiguous evidence).  If every
          replica fails, the last error is chained into the raised
          :class:`ClusterError`.
        - **Request errors** (any :class:`~repro.errors.ReproError`:
          unparseable SQL is a ``ParseError``, an unknown bundle or
          missing snapshot a ``ServingError``, a bad plan a
          ``PlanError`` — the library raises its hierarchy for
          everything deterministic) propagate untouched.  Replicas are
          identical, so these would fail the same way everywhere, and
          a single bad client must not be able to eject healthy
          replicas three requests at a time.
        - **Overload** (:class:`ShardOverloadError`) does not fail
          over: shedding is deliberate degradation, and spilling a
          saturated tenant onto other tenants' replicas would defeat
          the isolation the shards exist to provide.

        With a tracer attached, the whole attempt chain runs under one
        ``route`` span (which, via the shared tracer's thread-local
        stack, parents the shard service's request span) annotated with
        the tenant, the serving shard and whether failover rerouted it.
        """
        tracer = self.tracer
        if tracer is None:
            return self._failover_loop(key, call, release_on_success, None)
        with tracer.start_span("route", kind="route") as span:
            span.annotate(tenant=key)
            return self._failover_loop(key, call, release_on_success, span)

    def _failover_loop(
        self,
        key: str,
        call,
        release_on_success: bool,
        span,
    ):
        """The retry chain of :meth:`_with_failover` (*span* is the
        open route span, or None when tracing is off)."""
        excluded: Set[str] = set()
        rerouted = False
        last_error: Optional[Exception] = None
        while True:
            try:
                shard_id = self.router.shard_for(key, exclude=excluded)
            except ClusterError:
                self.stats.count_exhausted()
                raise ClusterError(
                    f"request for tenant {key!r} failed on every alive shard"
                ) from last_error
            shard = self._shards[shard_id]
            if not shard.admission.try_acquire():
                self.events.emit("admission_shed", shard=shard_id, tenant=key)
                raise ShardOverloadError(
                    f"shard {shard_id!r} is at its admission limit "
                    f"({shard.admission.max_inflight} in flight); request shed"
                )
            try:
                shard.check_up()
                value = call(shard)
            except ShardDownError as exc:
                shard.admission.release()
                if self.router.record_failure(shard_id):
                    self.events.emit(
                        "shard_ejected", shard=shard_id, reason="health"
                    )
                last_error = exc
                excluded.add(shard_id)
                rerouted = True
                continue
            except ReproError:
                # A request-shaped failure fails the same way on every
                # replica; surface it without charging the shard.
                shard.admission.release()
                raise
            except Exception as exc:
                # Unexpected: retry elsewhere, but no health charge —
                # this may be request poison, not a sick replica.
                shard.admission.release()
                last_error = exc
                excluded.add(shard_id)
                rerouted = True
                continue
            if release_on_success:
                shard.admission.release()
                self.router.record_success(shard_id)
            self.stats.count_routed(shard_id)
            if rerouted:
                self.stats.count_reroute()
            if span is not None:
                span.annotate(shard=shard_id, rerouted=rerouted)
            return value

    # ------------------------------------------------------------------
    # public estimation API (CostService-shaped)
    # ------------------------------------------------------------------
    def estimate(
        self,
        query,
        env,
        bundle: Optional[str] = None,
        tenant: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> float:
        """Estimated latency (ms) of *query* under *env*, served by the
        tenant's shard (with failover).  ``backend`` tags the request
        with its engine family; the shard service routes it (unknown
        tags raise :class:`~repro.errors.UnknownBackendError`, which —
        being request-shaped — never charges health or fails over)."""
        key, name = self._resolve_key(bundle, tenant, backend)
        return self._with_failover(
            key,
            lambda shard: shard.service.estimate(
                query, env, bundle=name, backend=backend
            ),
        )

    def estimate_many(
        self,
        queries: Sequence,
        env,
        bundle: Optional[str] = None,
        batch_size: int = 64,
        tenant: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Batched estimates, routed as one unit to the tenant's shard."""
        key, name = self._resolve_key(bundle, tenant, backend)
        return self._with_failover(
            key,
            lambda shard: shard.service.estimate_many(
                queries, env, bundle=name, batch_size=batch_size,
                backend=backend,
            ),
        )

    def estimate_async(
        self,
        query,
        env,
        bundle: Optional[str] = None,
        tenant: Optional[str] = None,
        backend: Optional[str] = None,
    ):
        """Queue *query* on the tenant shard's micro-batcher; returns a
        Future.  Submission (parse/plan/featurize) fails over like
        :meth:`estimate`; a failure *after* submission resolves the
        Future with the error and counts against the shard's health.

        The admission slot is held until the Future resolves — that is
        what bounds the batcher queue on the async path, so a flood of
        submissions sheds at the door instead of growing an unbounded
        backlog of pending futures."""
        key, name = self._resolve_key(bundle, tenant, backend)

        def _submit(shard: ClusterShard):
            future = shard.service.estimate_async(
                query, env, bundle=name, backend=backend
            )

            def _record(done) -> None:
                # The slot rides with the request through the batcher
                # queue; releasing here (success, failure or cancel) is
                # what makes max_inflight bound the async backlog.
                shard.admission.release()
                # Same failure classification as _with_failover: only
                # an unambiguous replica death (ShardDownError) charges
                # shard health.  A request-shaped error — which the
                # batcher fans out to every waiter in the batch — or a
                # cancellation at close() must not eject replicas.
                if done.cancelled():
                    return
                exc = done.exception()
                if exc is None:
                    self.router.record_success(shard.shard_id)
                elif isinstance(exc, ShardDownError):
                    if self.router.record_failure(shard.shard_id):
                        self.events.emit(
                            "shard_ejected",
                            shard=shard.shard_id,
                            reason="health",
                        )

            future.add_done_callback(_record)
            return future

        return self._with_failover(key, _submit, release_on_success=False)

    def record_feedback(
        self,
        query,
        env,
        actual_ms: Optional[float] = None,
        bundle: Optional[str] = None,
        tenant: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> None:
        """Report an actual runtime to the tenant shard's adaptation
        loop (no-op there when adaptation is disabled)."""
        key, name = self._resolve_key(bundle, tenant, backend)
        self._with_failover(
            key,
            lambda shard: shard.service.record_feedback(
                query, env, actual_ms=actual_ms, bundle=name, backend=backend
            ),
        )

    # ------------------------------------------------------------------
    # shard lifecycle (failure injection + operations)
    # ------------------------------------------------------------------
    def kill_shard(self, shard_id: str) -> None:
        """Simulate a replica crash: requests reaching *shard_id* fail
        (and fail over) until the router's threshold ejects it."""
        self._shard(shard_id).killed = True
        self.events.emit("shard_killed", shard=shard_id)

    def revive_shard(self, shard_id: str) -> None:
        """Bring a killed/ejected replica back into routing; exactly
        its rendezvous tenants move back to it."""
        self._shard(shard_id).killed = False
        self.router.recover(shard_id)
        self.events.emit("shard_revived", shard=shard_id)

    def eject(self, shard_id: str) -> None:
        """Remove *shard_id* from routing immediately (no failures
        needed — an operator or external health probe decision)."""
        self.router.eject(shard_id)
        self.events.emit("shard_ejected", shard=shard_id, reason="operator")

    def restart_shard(
        self, shard_id: str, checkpoint_dir=None
    ) -> bool:
        """Replace *shard_id*'s replica with a fresh service and bring
        it back into routing — the per-replica warm-restart path.

        With *checkpoint_dir*, the fresh replica first tries a warm
        boot (:meth:`~repro.serving.CostService.restore`); a corrupt or
        version-mismatched checkpoint fails over to a cold start, never
        an error.  Either way, any deployed bundle the boot did not
        restore is re-deployed from the cluster's retained copies, so
        the replica always serves every tenant.  Returns True on a warm
        boot.  Intended for a killed/ejected replica: in-flight
        requests on a live replica are not drained first.
        """
        shard = self._shard(shard_id)
        old = shard.service
        fresh = self._factory(shard_id)
        warm = False
        if checkpoint_dir is not None:
            warm = fresh.restore(checkpoint_dir)
        with self._lock:
            retained = dict(self._bundle_objects)
        for name, bundle in retained.items():
            if name not in fresh.registry:
                fresh.deploy(bundle, name=name)
        shard.service = fresh
        shard.killed = False
        self.router.recover(shard_id)
        old.close()
        self.events.emit("shard_restarted", shard=shard_id, warm=warm)
        return warm

    # ------------------------------------------------------------------
    # durability (repro.persist)
    # ------------------------------------------------------------------
    def save(self, directory, retain: int = 3) -> Dict[str, object]:
        """Checkpoint every replica under ``directory/<shard_id>/``;
        returns {shard_id: new checkpoint path}."""
        import pathlib

        base = pathlib.Path(directory)
        return {
            shard_id: shard.service.save(base / shard_id, retain=retain)
            for shard_id, shard in sorted(self._shards.items())
        }

    def restore(self, directory) -> Dict[str, bool]:
        """Warm-boot every replica from ``directory/<shard_id>/``;
        returns {shard_id: warm?}.

        Replicas whose checkpoints are missing or unloadable stay cold
        (False) — but never empty: each bundle any warm replica
        restored is re-deployed onto the replicas that lack it (its
        newest restored copy), so every tenant is servable everywhere
        and the failover invariant holds after a partial restore.
        Warm replicas are untouched — their restored versions (and the
        version-keyed caches behind them) stay intact.  The cluster's
        deployment bookkeeping (routing keys, retained bundle copies)
        is rebuilt from the restored registries.
        """
        import pathlib

        base = pathlib.Path(directory)
        warm = {
            shard_id: shard.service.restore(base / shard_id)
            for shard_id, shard in sorted(self._shards.items())
        }
        donors: Dict[str, EstimatorBundle] = {}
        for _shard_id, shard in sorted(self._shards.items()):
            for bundle in shard.service.registry.export_bundles():
                best = donors.get(bundle.name)
                if best is None or bundle.version > best.version:
                    donors[bundle.name] = bundle
        for _shard_id, shard in sorted(self._shards.items()):
            for name, bundle in donors.items():
                if name not in shard.service.registry:
                    shard.service.deploy(bundle, name=name)
        with self._lock:
            for name, bundle in donors.items():
                if name not in self._deployed:
                    self._deployed.append(name)
                self._bundle_objects.setdefault(name, bundle)
        return warm

    def _shard(self, shard_id: str) -> ClusterShard:
        try:
            return self._shards[shard_id]
        except KeyError:
            raise ClusterError(
                f"unknown shard {shard_id!r} "
                f"(shards: {sorted(self._shards)})"
            ) from None

    def shard(self, shard_id: str) -> ClusterShard:
        """The :class:`ClusterShard` for *shard_id* (introspection)."""
        return self._shard(shard_id)

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, object]:
        """Machine-readable counter snapshot for the whole tier.

        A thin view over :attr:`metrics`: ``cluster`` carries
        routing/admission/health totals, ``shards`` nests each
        replica's own :meth:`~repro.serving.CostService.counters`
        snapshot untouched (so existing per-service tooling can point
        one level down), ``events`` and — when tracing — ``tracer``
        follow.  The same registry renders the Prometheus exposition.
        """
        return self.metrics.sections_snapshot()

    def report(self) -> str:
        """Human-readable per-shard routing/health/admission report,
        rendered from the same registry snapshot :meth:`counters`
        serves."""
        from ..eval.reporting import render_cluster_report

        cluster = self.metrics.sections_snapshot()["cluster"]
        rows = [
            (
                shard_id,
                "up" if info["alive"] else "down",
                info["routed"],
                info["failures"],
                info["admission"]["shed"],
                info["admission"]["peak_inflight"],
            )
            for shard_id, info in sorted(cluster["per_shard"].items())
        ]
        totals = {
            "reroutes": cluster["reroutes"],
            "exhausted": cluster["exhausted"],
            "ejections": cluster["ejections"],
        }
        return render_cluster_report(rows, totals)

    def close(self) -> None:
        """Shut down every replica (adaptation loops, micro-batchers)."""
        for shard in self._shards.values():
            shard.service.close()

    def __enter__(self) -> "ClusterService":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close` the tier."""
        self.close()


__all__ = [
    "ClusterService",
    "ClusterShard",
    "ClusterStats",
    "ServiceFactory",
]
