"""Per-shard admission control: bounded depth, explicit load shedding.

A saturated shard that keeps queueing work doesn't get slower
gracefully — it collapses: every queue in the stack (batcher, GIL,
adaptation deque) grows, latency for *everyone* explodes, and by the
time requests fail they have already waited out their usefulness.
The standard fix is to bound the work a replica will hold and refuse
the excess *at the door*: a shed request fails in microseconds,
callers can retry elsewhere or back off, and the requests that were
admitted still meet their latency budget.

:class:`AdmissionController` is that bound — a counting gate over each
shard's in-flight requests with a shed counter, so overload shows up
in the cluster report as a number instead of as a latency cliff.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ClusterError
from ..obs.lockwatch import make_lock


class AdmissionController:
    """A bounded in-flight gate for one shard.

    ``try_acquire`` admits (True) or sheds (False) in O(1) without
    blocking; every admitted request must ``release()`` exactly once,
    normally via try/finally around the shard call.
    """

    def __init__(self, max_inflight: int):
        """Admit at most *max_inflight* concurrent requests."""
        if max_inflight < 1:
            raise ClusterError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.max_inflight = max_inflight
        self._lock = make_lock("cluster.admission")
        self._inflight = 0
        self._admitted = 0
        self._shed = 0
        self._peak_inflight = 0

    # ------------------------------------------------------------------
    def try_acquire(self) -> bool:
        """Claim one in-flight slot; False (and a shed count) if full."""
        with self._lock:
            if self._inflight >= self.max_inflight:
                self._shed += 1
                return False
            self._inflight += 1
            self._admitted += 1
            self._peak_inflight = max(self._peak_inflight, self._inflight)
            return True

    def release(self) -> None:
        """Return a slot claimed by :meth:`try_acquire`."""
        with self._lock:
            if self._inflight <= 0:
                raise ClusterError(
                    "release() without a matching try_acquire()"
                )
            self._inflight -= 1

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Requests currently holding a slot."""
        with self._lock:
            return self._inflight

    @property
    def shed(self) -> int:
        """Requests refused because the shard was full."""
        with self._lock:
            return self._shed

    def counters(self) -> Dict[str, int]:
        """Atomic snapshot of the admission counters."""
        with self._lock:
            return {
                "admitted": self._admitted,
                "shed": self._shed,
                "inflight": self._inflight,
                "peak_inflight": self._peak_inflight,
                "max_inflight": self.max_inflight,
            }


__all__ = ["AdmissionController"]
