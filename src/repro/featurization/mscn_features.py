"""MSCN set-based query featurization, extended for cost estimation.

MSCN (Kipf et al.) encodes a query as three sets — tables, joins,
predicates — pooled by per-set MLPs.  Section V of the paper extends it
to cost estimation by (i) switching the output from cardinality to
cost and (ii) adding "the fine-grained features (containing the
cardinality) same with QPPNet": here a global vector that averages the
per-operator encodings of the query's plan, which is also where the
feature-snapshot slots enter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

import numpy as np

from ..catalog.schema import Catalog
from ..engine.operators import OperatorType, PlanNode
from .encoding import OperatorEncoder

_PREDICATE_OPS = ("=", "<>", "<", "<=", ">", ">=", "between", "in", "like")


@dataclass
class MSCNSample:
    """One featurized query: three sets plus the global plan vector."""

    tables: np.ndarray  # (n_tables, table_dim)
    joins: np.ndarray  # (n_joins, join_dim), may be empty
    predicates: np.ndarray  # (n_preds, pred_dim), may be empty
    plan_global: np.ndarray  # (op_dim,)


@dataclass
class MSCNTemplate:
    """A literal-independent :class:`MSCNSample` skeleton.

    Shared by every instantiation of one statement template (same
    ``template_fingerprint``): the predicate value column and the plan
    matrix's numeric block are zeroed, everything else is final.
    :meth:`MSCNEncoder.encode_from_skeleton` patches those per request.
    The full plan *matrix* (not its mean) is kept so the pooled global
    vector can be recomputed by the exact reduction the scalar encoder
    uses — a precomputed partial mean would round differently.
    """

    tables: np.ndarray  # (n_tables, table_dim)
    joins: np.ndarray  # (n_joins, join_dim), may be empty
    predicates: np.ndarray  # (n_preds, pred_dim), value column zeroed
    plan_matrix: np.ndarray  # (n_nodes, op_dim), numeric block zeroed


class MSCNEncoder:
    """Builds :class:`MSCNSample` feature sets from plans."""

    def __init__(self, catalog: Catalog, operator_encoder: Optional[OperatorEncoder] = None):
        self.catalog = catalog
        self.op_encoder = operator_encoder or OperatorEncoder(catalog)
        self.tables: List[str] = catalog.table_names
        self.columns: List[Tuple[str, str]] = catalog.all_columns()
        self._table_pos = {t: i for i, t in enumerate(self.tables)}
        self._col_pos = {tc: i for i, tc in enumerate(self.columns)}
        self._op_pos = {op: i for i, op in enumerate(_PREDICATE_OPS)}

    # -- dimensions ------------------------------------------------------
    @property
    def table_dim(self) -> int:
        return len(self.tables)

    @property
    def join_dim(self) -> int:
        return 2 * len(self.columns)

    @property
    def predicate_dim(self) -> int:
        return len(self.columns) + len(_PREDICATE_OPS) + 1

    @property
    def global_dim(self) -> int:
        return self.op_encoder.dim

    # -- encoding --------------------------------------------------------
    def encode(
        self,
        plan: PlanNode,
        snapshot: Optional[Mapping[OperatorType, np.ndarray]] = None,
    ) -> MSCNSample:
        tables = sorted(plan.tables())
        table_rows = np.zeros((max(len(tables), 1), self.table_dim))
        for i, t in enumerate(tables):
            table_rows[i, self._table_pos[t]] = 1.0

        join_rows: List[np.ndarray] = []
        pred_rows: List[np.ndarray] = []
        for node in plan.walk():
            if len(node.join_columns) == 4:
                lt, lc, rt, rc = node.join_columns
                row = np.zeros(self.join_dim)
                left = self._col_pos.get((lt, lc))
                right = self._col_pos.get((rt, rc))
                if left is not None:
                    row[left] = 1.0
                if right is not None:
                    row[len(self.columns) + right] = 1.0
                join_rows.append(row)
            for pred in node.predicates:
                row = np.zeros(self.predicate_dim)
                pos = self._col_pos.get((pred.table, pred.column))
                if pos is not None:
                    row[pos] = 1.0
                row[len(self.columns) + self._op_pos[pred.op]] = 1.0
                row[-1] = self._normalized_value(pred)
                pred_rows.append(row)

        joins = np.stack(join_rows) if join_rows else np.zeros((0, self.join_dim))
        preds = (
            np.stack(pred_rows) if pred_rows else np.zeros((0, self.predicate_dim))
        )
        plan_matrix = self.op_encoder.encode_plan(plan, snapshot)
        return MSCNSample(
            tables=table_rows,
            joins=joins,
            predicates=preds,
            plan_global=plan_matrix.mean(axis=0),
        )

    # -- template memoization -------------------------------------------
    def encode_skeleton(
        self,
        plan: PlanNode,
        snapshot: Optional[Mapping[OperatorType, np.ndarray]] = None,
    ) -> MSCNTemplate:
        """Encode the literal-independent parts of *plan* once.

        The result is cacheable under ``template_fingerprint``:
        predicate value cells and the plan matrix's numeric block are
        zeroed, everything else (one-hots, snapshot coefficients) is
        exactly what :meth:`encode` produces.
        """
        sample = self.encode(plan, snapshot)
        predicates = sample.predicates.copy()
        if predicates.size:
            predicates[:, -1] = 0.0
        plan_matrix = self.op_encoder.encode_plan_skeleton(plan, snapshot)
        return MSCNTemplate(
            tables=sample.tables,
            joins=sample.joins,
            predicates=predicates,
            plan_matrix=plan_matrix,
        )

    def encode_from_skeleton(
        self, template: MSCNTemplate, plan: PlanNode
    ) -> MSCNSample:
        """Instantiate a cached *template* with this plan's literals.

        Patches only the predicate value column (walk order, matching
        :meth:`encode`'s row order) and the plan matrix's numeric
        block, then pools the global vector with the same full-matrix
        ``mean`` the scalar path uses — so the result is bit-identical
        to a fresh :meth:`encode` of *plan*.
        """
        predicates = template.predicates.copy()
        row = 0
        for node in plan.walk():
            for pred in node.predicates:
                predicates[row, -1] = self._normalized_value(pred)
                row += 1
        plan_matrix = self.op_encoder.fill_numerics(
            template.plan_matrix.copy(), plan
        )
        return MSCNSample(
            tables=template.tables,
            joins=template.joins,
            predicates=predicates,
            plan_global=plan_matrix.mean(axis=0),
        )

    def _normalized_value(self, pred) -> float:
        col = self.catalog.column(pred.table, pred.column)
        span = max(col.max_value - col.min_value, 1e-9)

        def norm(value: object) -> float:
            try:
                return float(np.clip((float(value) - col.min_value) / span, 0.0, 1.0))  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return 0.5

        if pred.op == "between":
            low, high = pred.value  # type: ignore[misc]
            return norm(high) - norm(low)
        if pred.op == "in":
            return len(tuple(pred.value)) / max(col.ndv, 1)  # type: ignore[arg-type]
        return norm(pred.value)
