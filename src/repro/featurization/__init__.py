"""Featurization: operator-level and MSCN set-based encodings."""

from .encoding import SNAPSHOT_SLOTS, OperatorEncoder, apply_mask
from .fingerprint import plan_fingerprint, template_fingerprint
from .mscn_features import MSCNEncoder, MSCNSample, MSCNTemplate

__all__ = [
    "OperatorEncoder",
    "apply_mask",
    "SNAPSHOT_SLOTS",
    "MSCNEncoder",
    "MSCNSample",
    "MSCNTemplate",
    "plan_fingerprint",
    "template_fingerprint",
]
