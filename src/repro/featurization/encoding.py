"""QPPNet-style per-operator feature encoding.

Following the encoding survey in the paper's Table III, every plan node
is encoded as one-hot blocks (operator type, table, referenced columns,
index) plus numerical values (cardinalities, widths, optimizer costs,
clause counts), and — when QCFE is enabled — the feature-snapshot
coefficient slots for the node's operator type.

The layout is deliberately *unified* across operator types: one fixed
vector with named dimensions.  Many dimensions are ineffective for any
given benchmark (columns never filtered, operators never produced,
index slots for workloads that plan no index scans) — precisely the
dead weight the paper's feature reduction prunes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..catalog.schema import Catalog
from ..engine.operators import OperatorType, PlanNode
from ..errors import FeatureError

#: Width of the snapshot block: the widest logical formula (Nested
#: Loop, Table I) has four coefficients.
SNAPSHOT_SLOTS = 4

_NUMERIC_NAMES = (
    "log_est_rows",
    "log_est_width",
    "log_est_total_cost",
    "log_est_startup_cost",
    "n_predicates",
    "n_sort_keys",
    "n_group_keys",
    "n_children",
    "est_selectivity",
    "log_limit",
)


class OperatorEncoder:
    """Encodes plan nodes into fixed-width named feature vectors."""

    def __init__(self, catalog: Catalog, snapshot_slots: int = SNAPSHOT_SLOTS):
        self.catalog = catalog
        self.snapshot_slots = snapshot_slots
        self.operators: List[OperatorType] = list(OperatorType)
        self.tables: List[str] = catalog.table_names
        self.columns: List[Tuple[str, str]] = catalog.all_columns()
        self.indexes: List[str] = [ix.name for ix in catalog.all_indexes()]
        self._op_pos = {op: i for i, op in enumerate(self.operators)}
        self._table_pos = {t: i for i, t in enumerate(self.tables)}
        self._col_pos = {tc: i for i, tc in enumerate(self.columns)}
        self._index_pos = {name: i for i, name in enumerate(self.indexes)}
        self._offsets = self._build_offsets()
        self.feature_names: List[str] = self._build_names()

    # ------------------------------------------------------------------
    def _build_offsets(self) -> Dict[str, int]:
        offsets = {"op": 0}
        offsets["table"] = offsets["op"] + len(self.operators)
        offsets["column"] = offsets["table"] + len(self.tables)
        offsets["index"] = offsets["column"] + len(self.columns)
        offsets["numeric"] = offsets["index"] + len(self.indexes)
        offsets["snapshot"] = offsets["numeric"] + len(_NUMERIC_NAMES)
        offsets["end"] = offsets["snapshot"] + self.snapshot_slots
        return offsets

    def _build_names(self) -> List[str]:
        names = [f"op:{op.value}" for op in self.operators]
        names += [f"table:{t}" for t in self.tables]
        names += [f"column:{t}.{c}" for t, c in self.columns]
        names += [f"index:{name}" for name in self.indexes]
        names += [f"num:{n}" for n in _NUMERIC_NAMES]
        names += [f"snapshot:c{i}" for i in range(self.snapshot_slots)]
        return names

    @property
    def dim(self) -> int:
        return self._offsets["end"]

    def block_slice(self, block: str) -> slice:
        """The dimension range of a named block (op/table/column/...)."""
        order = ["op", "table", "column", "index", "numeric", "snapshot", "end"]
        if block not in order[:-1]:
            raise FeatureError(f"unknown feature block {block!r}")
        start = self._offsets[block]
        stop = self._offsets[order[order.index(block) + 1]]
        return slice(start, stop)

    # ------------------------------------------------------------------
    def encode_node(
        self,
        node: PlanNode,
        snapshot: Optional[Mapping[OperatorType, np.ndarray]] = None,
    ) -> np.ndarray:
        """Encode one node; *snapshot* maps operator type -> coefficients."""
        vec = np.zeros(self.dim, dtype=np.float64)
        vec[self._op_pos[node.op]] = 1.0
        if node.table is not None:
            vec[self._offsets["table"] + self._table_pos[node.table]] = 1.0
        for table, column in self._referenced_columns(node):
            pos = self._col_pos.get((table, column))
            if pos is not None:
                vec[self._offsets["column"] + pos] = 1.0
        if node.index is not None and node.index in self._index_pos:
            vec[self._offsets["index"] + self._index_pos[node.index]] = 1.0
        vec[self._offsets["numeric"]:self._offsets["snapshot"]] = self._numerics(node)
        if snapshot is not None and node.op in snapshot:
            coeffs = np.asarray(snapshot[node.op], dtype=np.float64)
            width = min(len(coeffs), self.snapshot_slots)
            base = self._offsets["snapshot"]
            vec[base:base + width] = coeffs[:width]
        return vec

    def encode_plan(
        self,
        plan: PlanNode,
        snapshot: Optional[Mapping[OperatorType, np.ndarray]] = None,
    ) -> np.ndarray:
        """Encode every node (pre-order) into an (n_nodes, dim) matrix."""
        return np.stack([self.encode_node(n, snapshot) for n in plan.walk()])

    # ------------------------------------------------------------------
    # template memoization
    # ------------------------------------------------------------------
    def encode_plan_skeleton(
        self,
        plan: PlanNode,
        snapshot: Optional[Mapping[OperatorType, np.ndarray]] = None,
    ) -> np.ndarray:
        """Encode the plan with the literal-derived block zeroed.

        The numeric block is the only part of a node vector that
        changes between executions of the same statement template with
        different literals (one-hot blocks depend on predicate
        *columns*, never values); zeroing it yields a matrix shared by
        every instantiation, cacheable under
        :func:`~repro.featurization.fingerprint.template_fingerprint`.
        :meth:`fill_numerics` patches a copy back to exactly what
        :meth:`encode_plan` would have produced.
        """
        matrix = self.encode_plan(plan, snapshot)
        matrix[:, self.block_slice("numeric")] = 0.0
        return matrix

    def fill_numerics(self, matrix: np.ndarray, plan: PlanNode) -> np.ndarray:
        """Write this plan's numeric block into a skeleton copy, in place.

        Row *i* of *matrix* must correspond to the *i*-th pre-order
        node of *plan* (the :meth:`encode_plan_skeleton` layout).  The
        values written are computed by the same code path the scalar
        encoder uses, so the patched matrix is bit-identical to a fresh
        :meth:`encode_plan` — the memoized and unmemoized serving paths
        cannot disagree.  Returns *matrix* for chaining.
        """
        block = self.block_slice("numeric")
        for i, node in enumerate(plan.walk()):
            matrix[i, block] = self._numerics(node)
        return matrix

    # ------------------------------------------------------------------
    def _numerics(self, node: PlanNode) -> np.ndarray:
        child_rows = 1.0
        for child in node.children:
            child_rows *= max(child.est_rows, 1.0)
        if node.table is not None:
            child_rows = float(self.catalog.table(node.table).row_count)
        selectivity = min(node.est_rows / max(child_rows, 1.0), 1.0)
        return np.array(
            [
                np.log1p(max(node.est_rows, 0.0)),
                np.log1p(max(node.est_width, 0)),
                np.log1p(max(node.est_total_cost, 0.0)),
                np.log1p(max(node.est_startup_cost, 0.0)),
                float(len(node.predicates)),
                float(len(node.sort_keys)),
                float(len(node.group_keys)),
                float(len(node.children)),
                selectivity,
                np.log1p(float(node.limit_count or 0)),
            ],
            dtype=np.float64,
        )

    @staticmethod
    def _referenced_columns(node: PlanNode) -> List[Tuple[str, str]]:
        refs: List[Tuple[str, str]] = [(p.table, p.column) for p in node.predicates]
        for key in (*node.sort_keys, *node.group_keys):
            if "." in key:
                table, column = key.split(".", 1)
                refs.append((table, column))
        if len(node.join_columns) == 4:
            lt, lc, rt, rc = node.join_columns
            refs.extend([(lt, lc), (rt, rc)])
        return refs


def apply_mask(features: np.ndarray, keep: Optional[np.ndarray]) -> np.ndarray:
    """Project feature vectors/matrices onto the kept dimensions."""
    if keep is None:
        return features
    keep = np.asarray(keep)
    if keep.dtype == bool:
        return features[..., keep]
    return features[..., keep.astype(int)]
