"""Stable plan fingerprints: the feature-cache key of the serving layer.

Two plans receive the same fingerprint exactly when they encode to the
same feature vectors: the digest covers every :class:`PlanNode` field
the :class:`~repro.featurization.encoding.OperatorEncoder` (and the
MSCN encoder) reads — operator, table/index, predicates, sort/join/
group keys, limit and the optimizer estimates — walked in the same
pre-order the encoders use.  Runtime-only fields (actual times, true
cardinalities, resource counts) are deliberately excluded: they are
unknown at estimation time and unused by featurization.

Extra context (environment name, bundle version, mask revision) is
mixed in via ``*context`` so one cache can serve many configurations
without collisions.

:func:`template_fingerprint` is the coarser sibling used by
template-level memoization: it drops every *literal-derived* field
(predicate values, LIMIT counts, optimizer estimates) so all
instantiations of one prepared-statement template share a digest.  The
cached skeleton is then patched with just those per-request values —
see ``OperatorEncoder.encode_plan_skeleton``.
"""

from __future__ import annotations

import hashlib

from ..engine.operators import PlanNode

_FIELD_SEP = b"\x1f"
_NODE_SEP = b"\x1e"


def _predicate_key(predicate) -> str:
    return (
        f"{predicate.table}.{predicate.column}{predicate.op}{predicate.value!r}"
    )


def plan_fingerprint(plan: PlanNode, *context: object) -> str:
    """Hex digest identifying *plan*'s featurization, plus *context*."""
    digest = hashlib.blake2b(digest_size=16)
    for part in context:
        digest.update(repr(part).encode("utf-8"))
        digest.update(_FIELD_SEP)
    for node in plan.walk():
        fields = (
            node.op.value,
            node.table or "",
            node.index or "",
            ";".join(_predicate_key(p) for p in node.predicates),
            ",".join(node.sort_keys),
            ",".join(node.join_columns),
            ",".join(node.group_keys),
            str(node.limit_count),
            f"{node.est_rows:.8g}",
            str(node.est_width),
            f"{node.est_startup_cost:.8g}",
            f"{node.est_total_cost:.8g}",
            str(len(node.children)),
        )
        digest.update("|".join(fields).encode("utf-8"))
        digest.update(_NODE_SEP)
    return digest.hexdigest()


def template_fingerprint(plan: PlanNode, *context: object) -> str:
    """Hex digest of *plan*'s shape with literal-derived fields dropped.

    Covers exactly the featurization inputs that survive in an encoded
    *skeleton*: operator, table/index, predicate columns and operators
    (but not their values), sort/join/group keys and child count.
    Predicate values, LIMIT counts and the optimizer estimates — every
    dimension :meth:`OperatorEncoder.fill_numerics` or the MSCN value
    column rewrites per request — are excluded, so two executions of
    the same prepared statement with different literals collide here
    on purpose.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(b"template")
    digest.update(_FIELD_SEP)
    for part in context:
        digest.update(repr(part).encode("utf-8"))
        digest.update(_FIELD_SEP)
    for node in plan.walk():
        fields = (
            node.op.value,
            node.table or "",
            node.index or "",
            ";".join(
                f"{p.table}.{p.column}{p.op}" for p in node.predicates
            ),
            ",".join(node.sort_keys),
            ",".join(node.join_columns),
            ",".join(node.group_keys),
            str(len(node.children)),
        )
        digest.update("|".join(fields).encode("utf-8"))
        digest.update(_NODE_SEP)
    return digest.hexdigest()
