"""Greedy q-error feature reduction (paper Algorithm 2).

The approximate greedy baseline: repeatedly evaluate the trained model
with each remaining feature dropped (masked to zero), permanently drop
the single feature whose removal lowers the q-error the most, and stop
when no single removal helps.  Polynomial time (O(n^2) evaluations) but
blind to feature co-relationships — pairs of features that are only
useless together are never found, which is why the paper observes it
reduces ~1% of dimensions where difference propagation reduces ~40%.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

#: evaluate(mask) -> mean q-error of the model when the features where
#: mask is False are zeroed out.
MaskEvaluator = Callable[[np.ndarray], float]


def greedy_reduction(
    evaluate: MaskEvaluator,
    dim: int,
    always_keep: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
) -> Tuple[np.ndarray, float]:
    """Run Algorithm 2; returns (keep mask, final q-error)."""
    keep = np.ones(dim, dtype=bool)
    protected = np.zeros(dim, dtype=bool)
    if always_keep is not None:
        protected[np.asarray(list(always_keep), dtype=int)] = True
    best_error = evaluate(keep)
    rounds = 0
    while True:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            break
        drop_index = -1
        drop_error = best_error
        for index in range(dim):
            if not keep[index] or protected[index]:
                continue
            keep[index] = False
            error = evaluate(keep)
            keep[index] = True
            if error < drop_error:
                drop_error = error
                drop_index = index
        if drop_index < 0:
            break
        keep[drop_index] = False
        best_error = drop_error
    return keep, best_error
