"""Logical cost formulas (paper Table I).

Each operator's cost is assumed to follow a small *logical* formula in
its input cardinalities — ``F = c0*n + c1`` for scans/joins/aggregates,
``F = c0*n*log(n) + c1`` for Sort, and the bilinear form for Nested
Loop.  The coefficient vectors fitted against these formulas *are* the
feature snapshot: they absorb everything the environment (knobs,
hardware, storage, OS) does to per-unit costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from ..engine.operators import OperatorType, PlanNode
from ..errors import SnapshotError


@dataclass(frozen=True)
class LogicalFormula:
    """One row of Table I: a design-row builder for least squares."""

    name: str
    n_coefficients: int
    design_row: Callable[[Tuple[float, ...]], np.ndarray]

    def design_matrix(self, inputs: Sequence[Tuple[float, ...]]) -> np.ndarray:
        return np.stack([self.design_row(x) for x in inputs])

    def predict(self, coefficients: np.ndarray, inputs: Tuple[float, ...]) -> float:
        row = self.design_row(inputs)
        return float(row @ coefficients[: len(row)])


def _linear_row(inputs: Tuple[float, ...]) -> np.ndarray:
    (n,) = inputs
    return np.array([n, 1.0])


def _nlogn_row(inputs: Tuple[float, ...]) -> np.ndarray:
    (n,) = inputs
    return np.array([n * np.log2(max(n, 2.0)), 1.0])


def _nested_loop_row(inputs: Tuple[float, ...]) -> np.ndarray:
    n1, n2 = inputs
    return np.array([n1 * n2, n1, n2, 1.0])


LINEAR = LogicalFormula("linear", 2, _linear_row)
NLOGN = LogicalFormula("nlogn", 2, _nlogn_row)
NESTED_LOOP = LogicalFormula("nested_loop", 4, _nested_loop_row)

#: Operator -> logical formula (Table I, with Limit treated as linear).
FORMULAS: Dict[OperatorType, LogicalFormula] = {
    OperatorType.SEQ_SCAN: LINEAR,
    OperatorType.INDEX_SCAN: LINEAR,
    OperatorType.MATERIALIZE: LINEAR,
    OperatorType.AGGREGATE: LINEAR,
    OperatorType.MERGE_JOIN: LINEAR,
    OperatorType.HASH_JOIN: LINEAR,
    OperatorType.LIMIT: LINEAR,
    OperatorType.SORT: NLOGN,
    OperatorType.NESTED_LOOP: NESTED_LOOP,
}


def operator_inputs(node: PlanNode, catalog=None) -> Tuple[float, ...]:
    """The cardinality argument(s) ``n`` of a node's logical formula.

    Uses measured (true) cardinalities, as would be read from
    ``EXPLAIN ANALYZE`` when labelling operators.
    """
    op = node.op
    if op is OperatorType.SEQ_SCAN:
        if catalog is not None and node.table is not None:
            return (float(catalog.table(node.table).row_count),)
        return (max(node.true_rows, 1.0),)
    if op is OperatorType.INDEX_SCAN:
        return (max(node.true_rows, 1.0),)
    if op is OperatorType.NESTED_LOOP:
        return (
            max(node.children[0].true_rows, 1.0),
            max(node.children[1].true_rows, 1.0),
        )
    if op in (OperatorType.HASH_JOIN, OperatorType.MERGE_JOIN):
        return (
            max(node.children[0].true_rows, 1.0)
            + max(node.children[1].true_rows, 1.0),
        )
    if op in (OperatorType.SORT, OperatorType.AGGREGATE, OperatorType.MATERIALIZE):
        return (max(node.children[0].true_rows, 1.0),)
    if op is OperatorType.LIMIT:
        return (max(node.true_rows, 1.0),)
    raise SnapshotError(f"no logical formula inputs for {op}")
