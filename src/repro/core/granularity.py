"""Fine-grained feature snapshots (paper Section III, Discussions).

The paper's snapshot is fitted at the *operator* level and notes it
"could be extended to more fine-grained levels such as the
operator-table level ... fine-grained feature snapshots will bring
higher efficiency, and also increase the collection cost."  This module
implements that extension: coefficients fitted per (operator, table)
key, falling back to the operator-level fit for keys with too few
samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..catalog.schema import Catalog
from ..engine.executor import ExecutionSimulator
from ..engine.operators import OperatorType, PlanNode
from ..errors import SnapshotError
from ..sql.ast import SelectQuery
from .formulas import FORMULAS, operator_inputs
from .snapshot import MIN_SAMPLES, FeatureSnapshot

#: A fine-grained key: operator plus the table it touches (scans) or
#: None for table-independent operators (joins, sorts above joins).
FineKey = Tuple[OperatorType, Optional[str]]


@dataclass
class FineGrainedSnapshot:
    """Operator-table level snapshot with operator-level fallback."""

    env_name: str
    base: FeatureSnapshot
    fine_coefficients: Dict[FineKey, np.ndarray] = field(default_factory=dict)

    def coefficients_for(self, node: PlanNode) -> np.ndarray:
        """Most specific coefficients available for *node*."""
        key: FineKey = (node.op, node.table)
        if key in self.fine_coefficients:
            return self.fine_coefficients[key]
        coeffs = self.base.coefficients.get(node.op)
        if coeffs is None:
            raise SnapshotError(f"no coefficients for {node.op}")
        return coeffs

    def predict_node_ms(self, node: PlanNode, catalog: Optional[Catalog] = None) -> float:
        coeffs = self.coefficients_for(node)
        return FORMULAS[node.op].predict(coeffs, operator_inputs(node, catalog))

    @property
    def fine_key_count(self) -> int:
        return len(self.fine_coefficients)


def fit_fine_grained(
    queries: Sequence[SelectQuery],
    simulator: ExecutionSimulator,
    min_samples: int = MIN_SAMPLES,
) -> FineGrainedSnapshot:
    """Execute *queries* and fit both granularities.

    Per-key fits reuse the same Table I design matrices; keys with
    fewer than *min_samples* observations fall back to the operator-
    level coefficients, so the snapshot degrades gracefully exactly as
    the paper's discussion anticipates (higher collection cost for full
    fine-grained coverage).
    """
    by_op: Dict[OperatorType, List[Tuple[Tuple[float, ...], float]]] = {}
    by_key: Dict[FineKey, List[Tuple[Tuple[float, ...], float]]] = {}
    collection_ms = 0.0
    for query in queries:
        result = simulator.run_query(query)
        collection_ms += result.latency_ms
        for node in result.plan.walk():
            sample = (operator_inputs(node, simulator.catalog), node.actual_ms)
            by_op.setdefault(node.op, []).append(sample)
            by_key.setdefault((node.op, node.table), []).append(sample)

    base = FeatureSnapshot(env_name=simulator.env.name, source="fine")
    base.collection_ms = collection_ms
    for op, rows in by_op.items():
        if len(rows) < min_samples:
            continue
        formula = FORMULAS[op]
        design = formula.design_matrix([x for x, _ in rows])
        target = np.array([ms for _, ms in rows])
        coeffs, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
        base.coefficients[op] = coeffs
        base.residuals[op] = float(
            np.sqrt(np.mean((design @ coeffs - target) ** 2))
        )
    if not base.coefficients:
        raise SnapshotError("no operator reached the minimum sample count")

    snapshot = FineGrainedSnapshot(env_name=simulator.env.name, base=base)
    for key, rows in by_key.items():
        op, _ = key
        if len(rows) < min_samples or op not in base.coefficients:
            continue
        formula = FORMULAS[op]
        design = formula.design_matrix([x for x, _ in rows])
        target = np.array([ms for _, ms in rows])
        coeffs, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
        snapshot.fine_coefficients[key] = coeffs
    return snapshot


def residual_improvement(
    snapshot: FineGrainedSnapshot,
    queries: Sequence[SelectQuery],
    simulator: ExecutionSimulator,
) -> Tuple[float, float]:
    """Mean absolute per-node error of operator-level vs fine-grained
    predictions on fresh executions — quantifies the paper's "higher
    efficiency" claim for fine granularity."""
    coarse_errors: List[float] = []
    fine_errors: List[float] = []
    for query in queries:
        result = simulator.run_query(query)
        for node in result.plan.walk():
            if node.op not in snapshot.base.coefficients:
                continue
            actual = node.actual_ms
            coarse = FORMULAS[node.op].predict(
                snapshot.base.coefficients[node.op],
                operator_inputs(node, simulator.catalog),
            )
            fine = snapshot.predict_node_ms(node, simulator.catalog)
            coarse_errors.append(abs(coarse - actual))
            fine_errors.append(abs(fine - actual))
    if not coarse_errors:
        raise SnapshotError("no overlapping operators to compare")
    return float(np.mean(coarse_errors)), float(np.mean(fine_errors))
