"""Feature recall for dynamic workloads (paper Section IV, Discussions).

Feature reduction is fitted against one workload; when the workload
drifts (the paper's example: a write-only workload, whose index
features were pruned, starts receiving reads) the pruned dimensions may
regain "inherent value".  The paper sketches a *recall* mechanism as
future work; this module implements it:

- :class:`FeatureRecall` remembers the full encoder layout, the
  installed keep-masks and per-dimension activity statistics from the
  reduction-time data;
- :meth:`observe` watches freshly encoded operator data; a pruned
  dimension that starts *varying* (beyond its reduction-time behaviour)
  is flagged;
- :meth:`recall_masks` returns updated masks with the flagged
  dimensions re-included, so the pipeline can warm-retrain with them;
- :func:`collect_baselines` exports the per-operator mean feature
  vectors from reduction-time data (the "what did the pruned dims look
  like when we pruned them" reference), and
  :meth:`FeatureRecall.state_dict` / :meth:`FeatureRecall.from_state`
  serialize a watcher so a serving layer can persist and restore its
  drift state across deployments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

import numpy as np

from ..engine.operators import OperatorType
from ..errors import FeatureError

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.executor import LabeledPlan
    from ..featurization.encoding import OperatorEncoder

#: A pruned dimension is recalled once its observed standard deviation
#: exceeds this fraction of the live dimensions' median std.
_RECALL_STD_RATIO = 0.05


@dataclass
class _DimensionStats:
    """Streaming mean/variance per feature dimension (Welford)."""

    count: int = 0
    mean: Optional[np.ndarray] = None
    m2: Optional[np.ndarray] = None

    def update(self, rows: np.ndarray) -> None:
        rows = np.atleast_2d(rows)
        if self.mean is None:
            self.mean = np.zeros(rows.shape[1])
            self.m2 = np.zeros(rows.shape[1])
        for row in rows:
            self.count += 1
            delta = row - self.mean
            self.mean = self.mean + delta / self.count
            self.m2 = self.m2 + delta * (row - self.mean)

    def std(self) -> np.ndarray:
        if self.mean is None or self.count < 2:
            return np.zeros(0 if self.mean is None else len(self.mean))
        return np.sqrt(self.m2 / (self.count - 1))

    def state_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean": None if self.mean is None else self.mean.tolist(),
            "m2": None if self.m2 is None else self.m2.tolist(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "_DimensionStats":
        mean = state.get("mean")
        m2 = state.get("m2")
        return cls(
            count=int(state.get("count", 0)),
            mean=None if mean is None else np.asarray(mean, dtype=np.float64),
            m2=None if m2 is None else np.asarray(m2, dtype=np.float64),
        )


class FeatureRecall:
    """Watches operator feature streams and recalls pruned dimensions."""

    def __init__(
        self,
        masks: Mapping[OperatorType, np.ndarray],
        feature_names: Sequence[str],
        baselines: Optional[Mapping[OperatorType, np.ndarray]] = None,
    ):
        """``baselines`` (optional): per-operator mean feature vectors
        from the reduction-time data.  With a baseline, a pruned
        dimension is also recalled when its observed *mean* departs
        from the reduction-time constant — catching workload drift that
        shifts a dimension to a new constant value (e.g. every range
        scan now matching 100 rows instead of 1)."""
        self.masks: Dict[OperatorType, np.ndarray] = {
            op: np.asarray(mask, dtype=bool).copy() for op, mask in masks.items()
        }
        self.feature_names = list(feature_names)
        dim = len(self.feature_names)
        for op, mask in self.masks.items():
            if len(mask) != dim:
                raise FeatureError(
                    f"mask for {op} has {len(mask)} dims, layout has {dim}"
                )
        self.baselines: Dict[OperatorType, np.ndarray] = {}
        for op, mean in (baselines or {}).items():
            mean = np.asarray(mean, dtype=np.float64)[:dim]
            if len(mean) != dim:
                raise FeatureError(
                    f"baseline for {op} has {len(mean)} dims, layout has {dim}"
                )
            self.baselines[op] = mean
        self._stats: Dict[OperatorType, _DimensionStats] = {}
        self._flagged: Dict[OperatorType, Set[int]] = {}

    # ------------------------------------------------------------------
    def observe(self, op: OperatorType, rows: np.ndarray) -> List[str]:
        """Feed freshly encoded (unmasked) rows for operator *op*.

        Returns the names of any newly flagged (recall-worthy) pruned
        dimensions.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if rows.shape[1] != len(self.feature_names):
            raise FeatureError(
                f"expected {len(self.feature_names)} dims, got {rows.shape[1]}"
            )
        stats = self._stats.setdefault(op, _DimensionStats())
        stats.update(rows)
        if op not in self.masks or stats.count < 2:
            return []
        std = stats.std()
        live = self.masks[op]
        live_std = std[live]
        scale = float(np.median(live_std)) if live_std.size else 0.0
        threshold = max(scale * _RECALL_STD_RATIO, 1e-9)
        baseline = self.baselines.get(op)
        newly: List[str] = []
        flagged = self._flagged.setdefault(op, set())
        for dim in np.nonzero(~live)[0]:
            if dim in flagged:
                continue
            drifted = std[dim] > threshold
            if not drifted and baseline is not None:
                shift = abs(float(stats.mean[dim]) - float(baseline[dim]))
                drifted = shift > max(threshold, 0.05 * abs(float(baseline[dim])))
            if drifted:
                flagged.add(int(dim))
                newly.append(self.feature_names[dim])
        return newly

    # ------------------------------------------------------------------
    def flagged_dimensions(self, op: OperatorType) -> List[int]:
        return sorted(self._flagged.get(op, ()))

    def recall_masks(self) -> Dict[OperatorType, np.ndarray]:
        """Masks with every flagged dimension re-included."""
        updated: Dict[OperatorType, np.ndarray] = {}
        for op, mask in self.masks.items():
            new_mask = mask.copy()
            for dim in self._flagged.get(op, ()):
                new_mask[dim] = True
            updated[op] = new_mask
        return updated

    @property
    def total_flagged(self) -> int:
        return sum(len(dims) for dims in self._flagged.values())

    # ------------------------------------------------------------------
    # serialization (JSON-safe: operator types stored by value)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """The watcher's full state as plain (JSON-serializable) data:
        masks, layout, baselines, streaming statistics and flags."""
        return {
            "feature_names": list(self.feature_names),
            "masks": {
                op.value: mask.astype(int).tolist()
                for op, mask in self.masks.items()
            },
            "baselines": {
                op.value: mean.tolist() for op, mean in self.baselines.items()
            },
            "stats": {
                op.value: stats.state_dict() for op, stats in self._stats.items()
            },
            "flagged": {
                op.value: sorted(int(d) for d in dims)
                for op, dims in self._flagged.items()
            },
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "FeatureRecall":
        """Rebuild a watcher from :meth:`state_dict` output; streaming
        statistics and already-flagged dimensions are restored, so
        observation continues where the serialized watcher left off."""
        try:
            feature_names = list(state["feature_names"])
            masks = {
                OperatorType(op): np.asarray(mask, dtype=bool)
                for op, mask in dict(state["masks"]).items()
            }
        except (KeyError, ValueError, TypeError) as exc:
            raise FeatureError(f"invalid FeatureRecall state: {exc}") from exc
        baselines = {
            OperatorType(op): np.asarray(mean, dtype=np.float64)
            for op, mean in dict(state.get("baselines", {})).items()
        }
        recall = cls(masks, feature_names, baselines=baselines or None)
        for op, stats_state in dict(state.get("stats", {})).items():
            recall._stats[OperatorType(op)] = _DimensionStats.from_state(
                stats_state
            )
        for op, dims in dict(state.get("flagged", {})).items():
            recall._flagged[OperatorType(op)] = {int(d) for d in dims}
        return recall


def collect_baselines(
    encoder: "OperatorEncoder",
    labeled: Iterable["LabeledPlan"],
) -> Dict[OperatorType, np.ndarray]:
    """Per-operator mean *unmasked* feature vectors over a labelled set.

    This is the baseline export for :class:`FeatureRecall`: computed on
    the reduction-time workload, it records what every dimension looked
    like when the keep-masks were chosen, so a pruned dimension that
    later settles at a *different* constant (est_rows jumping from 1 to
    100 after a drift) is caught by the mean-shift rule even though its
    variance stays near zero.

    Rows are encoded *without* any snapshot mapping, matching how the
    serving adaptation loop observes traffic: the per-environment
    snapshot slots stay zero on both the baseline and observation
    sides, so they can never produce spurious mean-shift flags.
    """
    rows_by_op: Dict[OperatorType, List[np.ndarray]] = {}
    for record in labeled:
        for node in record.plan.walk():
            rows_by_op.setdefault(node.op, []).append(
                encoder.encode_node(node)
            )
    return {
        op: np.mean(np.stack(rows), axis=0) for op, rows in rows_by_op.items()
    }
