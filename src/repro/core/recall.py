"""Feature recall for dynamic workloads (paper Section IV, Discussions).

Feature reduction is fitted against one workload; when the workload
drifts (the paper's example: a write-only workload, whose index
features were pruned, starts receiving reads) the pruned dimensions may
regain "inherent value".  The paper sketches a *recall* mechanism as
future work; this module implements it:

- :class:`FeatureRecall` remembers the full encoder layout, the
  installed keep-masks and per-dimension activity statistics from the
  reduction-time data;
- :meth:`observe` watches freshly encoded operator data; a pruned
  dimension that starts *varying* (beyond its reduction-time behaviour)
  is flagged;
- :meth:`recall_masks` returns updated masks with the flagged
  dimensions re-included, so the pipeline can warm-retrain with them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

import numpy as np

from ..engine.operators import OperatorType
from ..errors import FeatureError

#: A pruned dimension is recalled once its observed standard deviation
#: exceeds this fraction of the live dimensions' median std.
_RECALL_STD_RATIO = 0.05


@dataclass
class _DimensionStats:
    """Streaming mean/variance per feature dimension (Welford)."""

    count: int = 0
    mean: Optional[np.ndarray] = None
    m2: Optional[np.ndarray] = None

    def update(self, rows: np.ndarray) -> None:
        rows = np.atleast_2d(rows)
        if self.mean is None:
            self.mean = np.zeros(rows.shape[1])
            self.m2 = np.zeros(rows.shape[1])
        for row in rows:
            self.count += 1
            delta = row - self.mean
            self.mean = self.mean + delta / self.count
            self.m2 = self.m2 + delta * (row - self.mean)

    def std(self) -> np.ndarray:
        if self.mean is None or self.count < 2:
            return np.zeros(0 if self.mean is None else len(self.mean))
        return np.sqrt(self.m2 / (self.count - 1))


class FeatureRecall:
    """Watches operator feature streams and recalls pruned dimensions."""

    def __init__(
        self,
        masks: Mapping[OperatorType, np.ndarray],
        feature_names: Sequence[str],
        baselines: Optional[Mapping[OperatorType, np.ndarray]] = None,
    ):
        """``baselines`` (optional): per-operator mean feature vectors
        from the reduction-time data.  With a baseline, a pruned
        dimension is also recalled when its observed *mean* departs
        from the reduction-time constant — catching workload drift that
        shifts a dimension to a new constant value (e.g. every range
        scan now matching 100 rows instead of 1)."""
        self.masks: Dict[OperatorType, np.ndarray] = {
            op: np.asarray(mask, dtype=bool).copy() for op, mask in masks.items()
        }
        self.feature_names = list(feature_names)
        dim = len(self.feature_names)
        for op, mask in self.masks.items():
            if len(mask) != dim:
                raise FeatureError(
                    f"mask for {op} has {len(mask)} dims, layout has {dim}"
                )
        self.baselines: Dict[OperatorType, np.ndarray] = {}
        for op, mean in (baselines or {}).items():
            mean = np.asarray(mean, dtype=np.float64)[:dim]
            if len(mean) != dim:
                raise FeatureError(
                    f"baseline for {op} has {len(mean)} dims, layout has {dim}"
                )
            self.baselines[op] = mean
        self._stats: Dict[OperatorType, _DimensionStats] = {}
        self._flagged: Dict[OperatorType, Set[int]] = {}

    # ------------------------------------------------------------------
    def observe(self, op: OperatorType, rows: np.ndarray) -> List[str]:
        """Feed freshly encoded (unmasked) rows for operator *op*.

        Returns the names of any newly flagged (recall-worthy) pruned
        dimensions.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if rows.shape[1] != len(self.feature_names):
            raise FeatureError(
                f"expected {len(self.feature_names)} dims, got {rows.shape[1]}"
            )
        stats = self._stats.setdefault(op, _DimensionStats())
        stats.update(rows)
        if op not in self.masks or stats.count < 2:
            return []
        std = stats.std()
        live = self.masks[op]
        live_std = std[live]
        scale = float(np.median(live_std)) if live_std.size else 0.0
        threshold = max(scale * _RECALL_STD_RATIO, 1e-9)
        baseline = self.baselines.get(op)
        newly: List[str] = []
        flagged = self._flagged.setdefault(op, set())
        for dim in np.nonzero(~live)[0]:
            if dim in flagged:
                continue
            drifted = std[dim] > threshold
            if not drifted and baseline is not None:
                shift = abs(float(stats.mean[dim]) - float(baseline[dim]))
                drifted = shift > max(threshold, 0.05 * abs(float(baseline[dim])))
            if drifted:
                flagged.add(int(dim))
                newly.append(self.feature_names[dim])
        return newly

    # ------------------------------------------------------------------
    def flagged_dimensions(self, op: OperatorType) -> List[int]:
        return sorted(self._flagged.get(op, ()))

    def recall_masks(self) -> Dict[OperatorType, np.ndarray]:
        """Masks with every flagged dimension re-included."""
        updated: Dict[OperatorType, np.ndarray] = {}
        for op, mask in self.masks.items():
            new_mask = mask.copy()
            for dim in self._flagged.get(op, ()):
                new_mask[dim] = True
            updated[op] = new_mask
        return updated

    @property
    def total_flagged(self) -> int:
        return sum(len(dims) for dims in self._flagged.values())
