"""The feature snapshot (paper Section III).

For each environment, per-operator coefficient vectors are fitted by
least squares against the logical formulas of Table I, from labelled
operator executions (the per-node actual times the executor records).
The snapshot summarises the environment's influence on cost — the
"ignored variables" — and is appended to operator feature vectors.

Two fitting sources correspond to the paper's FSO/FST ablation:
original workload queries (:func:`fit_snapshot_from_queries` on the
real templates) or Algorithm 1's simplified templates
(:mod:`repro.core.templates`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..catalog.schema import Catalog
from ..engine.executor import ExecutionSimulator, LabeledPlan
from ..engine.operators import OperatorType, PlanNode
from ..errors import SnapshotError
from ..featurization.encoding import SNAPSHOT_SLOTS
from ..sql.ast import SelectQuery
from .formulas import FORMULAS, operator_inputs

#: An operator needs at least this many labelled samples to be fitted.
MIN_SAMPLES = 3

OperatorSamples = Dict[OperatorType, List[Tuple[Tuple[float, ...], float]]]


@dataclass
class FeatureSnapshot:
    """Per-operator fitted coefficients for one environment."""

    env_name: str
    coefficients: Dict[OperatorType, np.ndarray] = field(default_factory=dict)
    residuals: Dict[OperatorType, float] = field(default_factory=dict)
    source: str = "original"  # "original" (FSO) or "template" (FST)
    #: Total *simulated* execution time of the labelling queries — the
    #: collection cost the paper's Table V compares (FSO hours vs FST).
    collection_ms: float = 0.0

    def padded(self, op: OperatorType) -> np.ndarray:
        """Coefficients padded to the encoder's snapshot width."""
        out = np.zeros(SNAPSHOT_SLOTS)
        coeffs = self.coefficients.get(op)
        if coeffs is not None:
            width = min(len(coeffs), SNAPSHOT_SLOTS)
            out[:width] = coeffs[:width]
        return out

    def as_mapping(self) -> Dict[OperatorType, np.ndarray]:
        return {op: self.padded(op) for op in self.coefficients}

    def predict_node_ms(self, node: PlanNode, catalog: Optional[Catalog] = None) -> float:
        """Logical-formula prediction for one node (sanity checks)."""
        coeffs = self.coefficients.get(node.op)
        if coeffs is None:
            raise SnapshotError(f"snapshot has no coefficients for {node.op}")
        return FORMULAS[node.op].predict(coeffs, operator_inputs(node, catalog))

    # ------------------------------------------------------------------
    # serialization (operator types stored by value; arrays stay
    # arrays so the persist layer keeps coefficients byte-exact)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """The snapshot's full state as plain data + arrays."""
        return {
            "env_name": self.env_name,
            "coefficients": {
                op.value: coeffs for op, coeffs in self.coefficients.items()
            },
            "residuals": {
                op.value: float(res) for op, res in self.residuals.items()
            },
            "source": self.source,
            "collection_ms": float(self.collection_ms),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "FeatureSnapshot":
        """Rebuild a snapshot from :meth:`state_dict` output."""
        try:
            snapshot = cls(
                env_name=str(state["env_name"]),
                source=str(state.get("source", "original")),
                collection_ms=float(state.get("collection_ms", 0.0)),
            )
            for op, coeffs in dict(state.get("coefficients", {})).items():
                snapshot.coefficients[OperatorType(op)] = np.asarray(
                    coeffs, dtype=np.float64
                )
            for op, res in dict(state.get("residuals", {})).items():
                snapshot.residuals[OperatorType(op)] = float(res)
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"invalid FeatureSnapshot state: {exc}") from exc
        return snapshot


class SnapshotSet:
    """Snapshots for many environments, with cross-env normalisation.

    Raw coefficients span orders of magnitude (ms per tuple vs fixed
    startup), so the mapping handed to encoders is standardised per
    (operator, slot) across the environments in the set — preserving
    exactly the cross-environment variation the model needs.
    """

    def __init__(self, snapshots: Iterable[FeatureSnapshot]):
        self._by_env: Dict[str, FeatureSnapshot] = {
            snap.env_name: snap for snap in snapshots
        }
        if not self._by_env:
            raise SnapshotError("a SnapshotSet needs at least one snapshot")
        self._normalized: Optional[Dict[str, Dict[OperatorType, np.ndarray]]] = None

    @property
    def env_names(self) -> List[str]:
        return sorted(self._by_env)

    @property
    def total_collection_ms(self) -> float:
        """Simulated labelling cost across all environments (Table V)."""
        return sum(snap.collection_ms for snap in self._by_env.values())

    def raw(self, env_name: str) -> FeatureSnapshot:
        try:
            return self._by_env[env_name]
        except KeyError:
            raise SnapshotError(f"no snapshot for environment {env_name!r}") from None

    def snapshots(self) -> List[FeatureSnapshot]:
        """The member snapshots (serving-layer extension point)."""
        return [self._by_env[name] for name in self.env_names]

    def with_snapshot(self, snapshot: FeatureSnapshot) -> "SnapshotSet":
        """A new set including *snapshot* (replacing any same-named one).

        Normalisation statistics are recomputed over the extended pool,
        which is why the serving layer swaps the whole set — and bumps
        the bundle version so feature caches keyed on the old
        normalisation expire — instead of mutating in place.
        """
        merged = dict(self._by_env)
        merged[snapshot.env_name] = snapshot
        return SnapshotSet(merged.values())

    def state_dict(self) -> Dict[str, object]:
        """Member snapshots as plain data (normalisation statistics are
        derived, so they are recomputed — identically — on restore)."""
        return {
            "snapshots": [snap.state_dict() for snap in self.snapshots()]
        }

    @classmethod
    def from_state(cls, state: "Mapping[str, object]") -> "SnapshotSet":
        """Rebuild a set from :meth:`state_dict` output."""
        try:
            members = list(state["snapshots"])
        except (KeyError, TypeError) as exc:
            raise SnapshotError(f"invalid SnapshotSet state: {exc}") from exc
        return cls(FeatureSnapshot.from_state(member) for member in members)

    def normalized(self, env_name: str) -> Dict[OperatorType, np.ndarray]:
        """Standardised coefficient mapping for *env_name*."""
        if self._normalized is None:
            self._normalized = self._normalize_all()
        if env_name not in self._normalized:
            raise SnapshotError(f"no snapshot for environment {env_name!r}")
        return self._normalized[env_name]

    def _normalize_all(self) -> Dict[str, Dict[OperatorType, np.ndarray]]:
        ops = sorted(
            {op for snap in self._by_env.values() for op in snap.coefficients},
            key=lambda o: o.value,
        )
        env_names = self.env_names
        result: Dict[str, Dict[OperatorType, np.ndarray]] = {
            name: {} for name in env_names
        }
        for op in ops:
            stacked = np.stack([self._by_env[name].padded(op) for name in env_names])
            mean = stacked.mean(axis=0)
            std = stacked.std(axis=0)
            std[std < 1e-12] = 1.0
            normalized = (stacked - mean) / std
            for row, name in enumerate(env_names):
                result[name][op] = normalized[row]
        return result


# ----------------------------------------------------------------------
# sample collection and fitting
# ----------------------------------------------------------------------
def collect_operator_samples(
    labeled: Sequence[LabeledPlan], catalog: Optional[Catalog] = None
) -> OperatorSamples:
    """Gather (formula inputs, actual ms) per operator from plans."""
    samples: OperatorSamples = {}
    for record in labeled:
        for node in record.plan.walk():
            samples.setdefault(node.op, []).append(
                (operator_inputs(node, catalog), node.actual_ms)
            )
    return samples


def fit_snapshot(
    samples: OperatorSamples,
    env_name: str,
    source: str = "original",
) -> FeatureSnapshot:
    """Least-squares fit of Table I formulas (paper Section III-A)."""
    snapshot = FeatureSnapshot(env_name=env_name, source=source)
    for op, rows in samples.items():
        if len(rows) < MIN_SAMPLES:
            continue
        formula = FORMULAS[op]
        design = formula.design_matrix([inputs for inputs, _ in rows])
        target = np.array([ms for _, ms in rows])
        coeffs, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
        predictions = design @ coeffs
        residual = float(np.sqrt(np.mean((predictions - target) ** 2)))
        snapshot.coefficients[op] = coeffs
        snapshot.residuals[op] = residual
    if not snapshot.coefficients:
        raise SnapshotError(f"no operator had >= {MIN_SAMPLES} samples")
    return snapshot


def fit_snapshot_from_queries(
    queries: Sequence[SelectQuery],
    simulator: ExecutionSimulator,
    source: str = "original",
) -> FeatureSnapshot:
    """Execute *queries* in the simulator's environment and fit."""
    samples: OperatorSamples = {}
    collection_ms = 0.0
    for query in queries:
        result = simulator.run_query(query)
        collection_ms += result.latency_ms
        for node in result.plan.walk():
            samples.setdefault(node.op, []).append(
                (operator_inputs(node, simulator.catalog), node.actual_ms)
            )
    snapshot = fit_snapshot(samples, simulator.env.name, source=source)
    snapshot.collection_ms = collection_ms
    return snapshot


def fit_snapshot_set(
    queries_by_env: Mapping[str, Sequence[SelectQuery]],
    simulators: Mapping[str, ExecutionSimulator],
    source: str = "original",
) -> SnapshotSet:
    """Fit one snapshot per environment and bundle them."""
    snapshots = []
    for env_name, queries in queries_by_env.items():
        snapshots.append(
            fit_snapshot_from_queries(queries, simulators[env_name], source=source)
        )
    return SnapshotSet(snapshots)
