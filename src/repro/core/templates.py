"""Simplified query templates (paper Algorithm 1).

Computing a feature snapshot by executing the *original* workload is
expensive (7.7h for TPC-H FSO in the paper).  Algorithm 1 instead

1. parses the original query templates, matching keywords to operators
   (paper Table II) to collect the operator-table-column set ``info``;
2. instantiates per-operator *parent templates* with that table/column
   information;
3. fills the resulting simplified templates with values from the data
   abstract ``R`` and random comparison keywords, ``N`` times each.

The simplified queries are tiny single-scan / single-join queries that
still exercise every operator the workload uses, so the least-squares
snapshot fit sees the same operators at a fraction of the cost (FST).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..catalog.schema import Catalog
from ..catalog.statistics import DataAbstract, Predicate
from ..rng import rng_for
from ..sql.ast import ColumnRef, JoinCondition, OrderByItem, SelectQuery

_QUALIFIED = r"[A-Za-z_][A-Za-z_0-9]*\.[A-Za-z_][A-Za-z_0-9]*"
#: comparison predicates: table.col OP literal-or-placeholder
_PRED_RE = re.compile(
    rf"({_QUALIFIED})\s*(<=|>=|<>|=|<|>|BETWEEN|IN|LIKE)\s*(?!{_QUALIFIED})",
    re.IGNORECASE,
)
_JOIN_RE = re.compile(rf"({_QUALIFIED})\s*=\s*({_QUALIFIED})")
_ORDER_RE = re.compile(rf"ORDER\s+BY\s+({_QUALIFIED})", re.IGNORECASE)
_GROUP_RE = re.compile(rf"GROUP\s+BY\s+({_QUALIFIED})", re.IGNORECASE)

#: Comparison keywords used to fill conditions (Algorithm 1, line 12).
FILL_OPERATORS = ("<", ">", "=")


@dataclass
class TemplateInfo:
    """The operator-table-column set ``info`` of Algorithm 1."""

    scans: Set[Tuple[str, str]] = field(default_factory=set)
    sorts: Set[Tuple[str, str]] = field(default_factory=set)
    aggregates: Set[Tuple[str, str]] = field(default_factory=set)
    joins: Set[Tuple[str, str, str, str]] = field(default_factory=set)

    def total_entries(self) -> int:
        return (
            len(self.scans) + len(self.sorts) + len(self.aggregates) + len(self.joins)
        )


def _split_ref(ref: str) -> Tuple[str, str]:
    table, column = ref.lower().split(".", 1)
    return table, column


def parse_template_info(
    template_texts: Sequence[Tuple[str, str]], catalog: Catalog
) -> TemplateInfo:
    """Phase 1: keyword-match the original templates (paper Table II).

    A comparison keyword maps to Seq/Index Scan, ``table1.a = table2.b``
    to the join operators, ``ORDER BY`` to Sort and ``GROUP BY`` to
    Aggregate.  References to tables/columns absent from the catalog
    are ignored (defensive: templates may mention synthetic aliases).
    """
    info = TemplateInfo()

    def known(table: str, column: str) -> bool:
        return catalog.has_table(table) and catalog.table(table).has_column(column)

    for _, text in template_texts:
        join_refs: Set[str] = set()
        for match in _JOIN_RE.finditer(text):
            left, right = match.group(1), match.group(2)
            lt, lc = _split_ref(left)
            rt, rc = _split_ref(right)
            if known(lt, lc) and known(rt, rc) and lt != rt:
                info.joins.add((lt, lc, rt, rc))
                join_refs.update({left.lower(), right.lower()})
        for match in _PRED_RE.finditer(text):
            ref = match.group(1).lower()
            if ref in join_refs:
                continue
            table, column = _split_ref(ref)
            if known(table, column):
                info.scans.add((table, column))
        for match in _ORDER_RE.finditer(text):
            table, column = _split_ref(match.group(1))
            if known(table, column):
                info.sorts.add((table, column))
        for match in _GROUP_RE.finditer(text):
            table, column = _split_ref(match.group(1))
            if known(table, column):
                info.aggregates.add((table, column))
    return info


@dataclass(frozen=True)
class SimplifiedTemplate:
    """Phase 2 output: one parent template bound to table/columns."""

    kind: str  # "scan" | "sort" | "aggregate" | "join" | "join_sort"
    table: str
    column: str
    join: Optional[Tuple[str, str, str, str]] = None

    def describe(self) -> str:
        if self.join is not None:
            lt, lc, rt, rc = self.join
            return f"{self.kind}:{lt}.{lc}={rt}.{rc}"
        return f"{self.kind}:{self.table}.{self.column}"


def generate_simplified_templates(info: TemplateInfo) -> List[SimplifiedTemplate]:
    """Phase 2: bind parent templates to the info set (Table II)."""
    templates: List[SimplifiedTemplate] = []
    for table, column in sorted(info.scans):
        templates.append(SimplifiedTemplate("scan", table, column))
    for table, column in sorted(info.sorts):
        templates.append(SimplifiedTemplate("sort", table, column))
    for table, column in sorted(info.aggregates):
        templates.append(SimplifiedTemplate("aggregate", table, column))
    for join in sorted(info.joins):
        lt, lc, rt, rc = join
        templates.append(SimplifiedTemplate("join", lt, lc, join=join))
        templates.append(SimplifiedTemplate("join_sort", lt, lc, join=join))
    return templates


def _condition(
    catalog: Catalog,
    abstract: DataAbstract,
    table: str,
    column: str,
    rng: np.random.Generator,
    fill_index: Optional[int] = None,
) -> Predicate:
    """One filled condition (Algorithm 1 line 12).

    The keyword is drawn from :data:`FILL_OPERATORS`; when
    ``fill_index`` is given the keywords cycle round-robin instead of
    being sampled, guaranteeing every operator keyword (hence both scan
    types) appears even at small scales ``N``.
    """
    if fill_index is None:
        op = str(rng.choice(FILL_OPERATORS))
    else:
        op = FILL_OPERATORS[fill_index % len(FILL_OPERATORS)]
    value = abstract.sample(table, column, rng)
    return Predicate(table, column, op, value)


def instantiate_simplified(
    template: SimplifiedTemplate,
    catalog: Catalog,
    abstract: DataAbstract,
    rng: np.random.Generator,
    fill_index: Optional[int] = None,
) -> SelectQuery:
    """Phase 3: fill one simplified template with values from ``R``."""
    condition = _condition(
        catalog, abstract, template.table, template.column, rng, fill_index
    )
    if template.kind == "scan":
        return SelectQuery(tables=[template.table], predicates=[condition])
    if template.kind == "sort":
        return SelectQuery(
            tables=[template.table],
            predicates=[condition],
            order_by=[OrderByItem(ColumnRef(template.table, template.column))],
        )
    if template.kind == "aggregate":
        return SelectQuery(
            tables=[template.table],
            predicates=[condition],
            group_by=[ColumnRef(template.table, template.column)],
            aggregate="count",
        )
    if template.kind in ("join", "join_sort"):
        lt, lc, rt, rc = template.join  # type: ignore[misc]
        order_by = (
            [OrderByItem(ColumnRef(lt, lc))] if template.kind == "join_sort" else []
        )
        return SelectQuery(
            tables=[lt, rt],
            predicates=[condition],
            joins=[JoinCondition(ColumnRef(lt, lc), ColumnRef(rt, rc))],
            order_by=order_by,
        )
    raise ValueError(f"unknown simplified-template kind {template.kind!r}")


def generate_simplified_queries(
    template_texts: Sequence[Tuple[str, str]],
    catalog: Catalog,
    abstract: DataAbstract,
    scale: int = 1,
    seed: int = 0,
) -> List[SelectQuery]:
    """Algorithm 1 end to end: original templates -> simplified queries.

    ``scale`` is the paper's ``N``: how many filled instances of each
    simplified template to emit.
    """
    info = parse_template_info(template_texts, catalog)
    simplified = generate_simplified_templates(info)
    rng = rng_for("simplified", seed)
    queries: List[SelectQuery] = []
    for round_index in range(max(scale, 1)):
        for template in simplified:
            queries.append(
                instantiate_simplified(
                    template, catalog, abstract, rng, fill_index=round_index
                )
            )
    return queries
