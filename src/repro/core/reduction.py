"""Difference-propagation feature reduction (paper Section IV-B).

Plain gradient importance fails on learned cost models for two reasons
the paper identifies: one-hot inputs are discrete (a derivative at the
point tells nothing about flipping the bit) and ReLU units that are
dead at the data points contribute zero gradient.  The fix is to
propagate *finite differences against reference inputs* instead of
derivatives — Equation 1, the Rescale rule of DeepLIFT (Shrikumar et
al., which the paper implements via the SHAP library).

For a network ``y = L_k(...L_1(x))`` and a reference ``r``:

* through a linear layer the multiplier is the weight matrix (the
  secant of a linear map is its slope);
* through ReLU the multiplier is the secant slope
  ``(relu(a_x) - relu(a_r)) / (a_x - a_r)`` (falling back to the
  derivative when the pre-activations coincide).

The importance of input dimension ``k`` is the expected magnitude of
its contribution ``m_k * (x_k - r_k)`` over data x in D and references
r in R — zero for dimensions that never vary or never move the output,
positive otherwise, even across dead ReLUs and one-hot flips.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import FeatureError
from ..nn.layers import Linear, ReLU, Sequential, Sigmoid, Tanh
from ..rng import rng_for

_EPS = 1e-9


def _forward_trace(model: Sequential, x: np.ndarray) -> List[np.ndarray]:
    """Inputs seen by each layer during a forward pass (plus output)."""
    activations = [x]
    current = x
    for layer in model:
        if isinstance(layer, Linear):
            current = current @ layer.weight.data + layer.bias.data
        elif isinstance(layer, ReLU):
            current = np.maximum(current, 0.0)
        elif isinstance(layer, Sigmoid):
            current = 1.0 / (1.0 + np.exp(-np.clip(current, -60, 60)))
        elif isinstance(layer, Tanh):
            current = np.tanh(current)
        else:
            raise FeatureError(
                f"difference propagation does not support layer {layer!r}"
            )
        activations.append(current)
    return activations


def _secant(pre_x: np.ndarray, pre_r: np.ndarray, post_x: np.ndarray,
            post_r: np.ndarray, derivative: np.ndarray) -> np.ndarray:
    """Elementwise secant slope with derivative fallback at ties."""
    delta_in = pre_x - pre_r
    delta_out = post_x - post_r
    slope = np.where(np.abs(delta_in) > _EPS, delta_out / np.where(
        np.abs(delta_in) > _EPS, delta_in, 1.0), derivative)
    return slope


def difference_multipliers(
    model: Sequential,
    x: np.ndarray,
    reference: np.ndarray,
    output_weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Multipliers m_{k,out} of every input dim for each sample in *x*.

    ``x`` is (n, d); ``reference`` is a single reference row (d,).
    ``output_weights`` selects/weights the model outputs (defaults to
    all ones; for QPPNet units pass a one-hot on the cost output).
    Returns (n, d).
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    reference = np.asarray(reference, dtype=np.float64).reshape(1, -1)
    trace_x = _forward_trace(model, x)
    trace_r = _forward_trace(model, np.repeat(reference, 1, axis=0))

    # Backward sweep, seeded by the output weighting.
    out_dim = trace_x[-1].shape[-1]
    if output_weights is None:
        multiplier = np.ones((x.shape[0], out_dim))
    else:
        weights = np.asarray(output_weights, dtype=np.float64).reshape(1, -1)
        multiplier = np.repeat(weights, x.shape[0], axis=0)
    for index in range(len(model.modules) - 1, -1, -1):
        layer = model.modules[index]
        pre_x, post_x = trace_x[index], trace_x[index + 1]
        pre_r, post_r = trace_r[index], trace_r[index + 1]
        if isinstance(layer, Linear):
            multiplier = multiplier @ layer.weight.data.T
        elif isinstance(layer, ReLU):
            derivative = (pre_x > 0).astype(np.float64)
            multiplier = multiplier * _secant(pre_x, pre_r, post_x, post_r, derivative)
        elif isinstance(layer, Sigmoid):
            derivative = post_x * (1.0 - post_x)
            multiplier = multiplier * _secant(pre_x, pre_r, post_x, post_r, derivative)
        elif isinstance(layer, Tanh):
            derivative = 1.0 - post_x**2
            multiplier = multiplier * _secant(pre_x, pre_r, post_x, post_r, derivative)
        else:  # pragma: no cover - guarded in _forward_trace
            raise FeatureError(f"unsupported layer {layer!r}")
    return multiplier


def difference_importance(
    model: Sequential,
    data: np.ndarray,
    references: Optional[np.ndarray] = None,
    n_references: int = 16,
    output_weights: Optional[np.ndarray] = None,
    seed: object = 0,
) -> np.ndarray:
    """Per-dimension importance scores I_diff (paper Equation 1 /
    Algorithm 3, with DeepLIFT contributions |m_k * delta_x_k|)."""
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    if references is None:
        rng = rng_for("fr-references", seed)
        take = min(n_references, len(data))
        picks = rng.choice(len(data), size=take, replace=False)
        references = data[picks]
    references = np.atleast_2d(references)
    scores = np.zeros(data.shape[1])
    for ref in references:
        multiplier = difference_multipliers(
            model, data, ref, output_weights=output_weights
        )
        contributions = multiplier * (data - ref.reshape(1, -1))
        scores += np.abs(contributions).mean(axis=0)
    return scores / len(references)


def keep_mask_from_scores(
    scores: np.ndarray,
    always_keep: Optional[Sequence[int]] = None,
    tolerance_ratio: float = 1e-3,
) -> np.ndarray:
    """Algorithm 3's filter: keep dimensions with score > 0.

    Floating point never yields exact zeros, so "zero" is anything
    below ``tolerance_ratio`` of the maximum score.  Difference
    contributions of genuinely useless dimensions are *exact* zeros
    (a dimension that never varies has delta_x == 0), so FR is
    insensitive to this threshold; gradient scores are small-but-
    nonzero everywhere, which is how GD ends up pruning plausible-but-
    wrong dimension sets (paper Figures 6-7).
    """
    scores = np.asarray(scores, dtype=np.float64)
    top = float(scores.max()) if scores.size else 0.0
    threshold = top * tolerance_ratio
    keep = scores > threshold
    if always_keep is not None:
        keep[np.asarray(list(always_keep), dtype=int)] = True
    if not keep.any():
        keep[:] = True  # never reduce to an empty feature set
    return keep


def reduce_features(
    model: Sequential,
    data: np.ndarray,
    n_references: int = 16,
    always_keep: Optional[Sequence[int]] = None,
    output_weights: Optional[np.ndarray] = None,
    seed: object = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Convenience: scores + keep mask in one call (Algorithm 3)."""
    scores = difference_importance(
        model,
        data,
        n_references=n_references,
        output_weights=output_weights,
        seed=seed,
    )
    return scores, keep_mask_from_scores(scores, always_keep=always_keep)
