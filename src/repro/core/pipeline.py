"""The QCFE pipeline (paper Figure 2a): snapshot -> encode -> reduce.

End-to-end orchestration of the paper's feature engineering around a
base learned estimator:

1. **Feature snapshot** — fit per-environment operator coefficients,
   either from original workload queries (FSO) or from Algorithm 1's
   simplified templates (FST);
2. **Train** the base estimator (QPPNet or MSCN) with the snapshot
   block appended to its operator features;
3. **Feature reduction** — score input dimensions on the trained model
   (difference propagation by default; greedy / gradient baselines for
   the ablation), install the keep-masks and retrain the smaller model.

The retrained reduced model is what QCFE(qpp)/QCFE(mscn) report in
Table IV; its training time is the "time" column (reduction makes it
cheaper than the base model's).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.environment import DatabaseEnvironment
from ..engine.executor import ExecutionSimulator, LabeledPlan
from ..engine.operators import OperatorType
from ..errors import TrainingError
from ..featurization.encoding import OperatorEncoder
from ..featurization.mscn_features import MSCNEncoder
from ..models.base import CostEstimator, TrainStats
from ..models.mscn import MSCN
from ..models.qppnet import QPPNet
from ..models.training import EvaluationReport, evaluate_estimator
from ..nn.loss import numpy_q_error
from ..workload.collect import Benchmark
from .gradient import gradient_importance
from .greedy import greedy_reduction
from .reduction import difference_importance, keep_mask_from_scores
from .snapshot import FeatureSnapshot, SnapshotSet, fit_snapshot_from_queries
from .templates import generate_simplified_queries


@dataclass
class QCFEConfig:
    """Configuration of one QCFE run."""

    model: str = "qppnet"  # "qppnet" | "mscn"
    snapshot_source: Optional[str] = "template"  # "original" | "template" | None
    reduction: Optional[str] = "diff"  # "diff" | "greedy" | "gradient" | None
    template_scale: int = 12  # Algorithm 1's N
    #: FSO labels the original workload; the paper runs the full
    #: parameter sweep per environment (e.g. 40x22 TPC-H queries).
    snapshot_queries_per_env: int = 60
    n_references: int = 16  # Algorithm 3's N
    epochs: int = 20
    hidden: Tuple[int, ...] = (64, 64)
    lr: float = 1e-3
    batch_size: int = 32
    seed: int = 0
    greedy_max_rounds: int = 4
    greedy_sample: int = 128
    #: FR's "score > 0" filter: difference contributions of useless
    #: dims are exact zeros, so a tiny relative tolerance suffices.
    fr_tolerance: float = 1e-6
    #: GD has no principled zero: gradients of useless dimensions stay
    #: O(weight-norm) because their (never-trained) weights are random,
    #: so the score distribution is flat and any threshold is
    #: arbitrary — the weakness the paper's Section IV-B identifies.
    #: A practical GD therefore drops a fixed score quantile, tuned
    #: here to the ~41% reduction the paper observes for GD; the
    #: *wrongness* of those drops shows up in Figure 6's accuracy.
    gradient_drop_quantile: float = 0.45


@dataclass
class QCFEResult:
    """Everything a fit produces, for reporting."""

    train_stats: TrainStats
    base_train_stats: Optional[TrainStats] = None
    snapshot_seconds: float = 0.0
    reduction_seconds: float = 0.0
    #: Time spent computing importance scores only (Table VI's runtime
    #: column; grows linearly with the reference count).
    scoring_seconds: float = 0.0
    masks: Dict[OperatorType, np.ndarray] = field(default_factory=dict)
    global_mask: Optional[np.ndarray] = None
    reduction_ratio: float = 0.0


class QCFE:
    """QCFE feature engineering wrapped around a base estimator."""

    def __init__(
        self,
        benchmark: Benchmark,
        environments: Sequence[DatabaseEnvironment],
        config: Optional[QCFEConfig] = None,
    ):
        self.benchmark = benchmark
        self.environments = list(environments)
        self.config = config or QCFEConfig()
        self.operator_encoder = OperatorEncoder(benchmark.catalog)
        self.snapshot_set: Optional[SnapshotSet] = None
        self.estimator: CostEstimator = self._build_estimator()
        self.result: Optional[QCFEResult] = None
        self._last_scoring_seconds = 0.0

    # ------------------------------------------------------------------
    def _build_estimator(self) -> CostEstimator:
        cfg = self.config
        if cfg.model == "qppnet":
            return QPPNet(
                self.operator_encoder,
                hidden=cfg.hidden,
                lr=cfg.lr,
                epochs=cfg.epochs,
                batch_size=cfg.batch_size,
                seed=cfg.seed,
            )
        if cfg.model == "mscn":
            return MSCN(
                MSCNEncoder(self.benchmark.catalog, self.operator_encoder),
                hidden=cfg.hidden[0],
                lr=cfg.lr,
                epochs=cfg.epochs,
                batch_size=cfg.batch_size,
                seed=cfg.seed,
            )
        raise TrainingError(f"unknown model {self.config.model!r}")

    # ------------------------------------------------------------------
    # snapshot fitting
    # ------------------------------------------------------------------
    def fit_snapshot(self) -> Tuple[Optional[SnapshotSet], float]:
        """Fit the per-environment snapshot set per the config source."""
        cfg = self.config
        if cfg.snapshot_source is None:
            return None, 0.0
        start = time.perf_counter()
        snapshots: List[FeatureSnapshot] = []
        for env_index, env in enumerate(self.environments):
            simulator = ExecutionSimulator(
                self.benchmark.catalog, self.benchmark.stats, env
            )
            if cfg.snapshot_source == "template":
                queries = generate_simplified_queries(
                    self.benchmark.template_texts,
                    self.benchmark.catalog,
                    self.benchmark.abstract,
                    scale=cfg.template_scale,
                    seed=cfg.seed + env_index,
                )
            elif cfg.snapshot_source == "original":
                queries = [
                    q
                    for _, q in self.benchmark.generate_queries(
                        cfg.snapshot_queries_per_env, seed=1000 + cfg.seed + env_index
                    )
                ]
            else:
                raise TrainingError(
                    f"unknown snapshot source {cfg.snapshot_source!r}"
                )
            snapshots.append(
                fit_snapshot_from_queries(
                    queries, simulator, source=cfg.snapshot_source
                )
            )
        snapshot_set = SnapshotSet(snapshots)
        return snapshot_set, time.perf_counter() - start

    # ------------------------------------------------------------------
    # reduction
    # ------------------------------------------------------------------
    def _keep_mask(self, scores: np.ndarray, always_keep=None) -> np.ndarray:
        """The config-appropriate filter: FR's near-zero rule or GD's
        quantile cut (see the field docs on :class:`QCFEConfig`)."""
        cfg = self.config
        if cfg.reduction == "gradient":
            threshold = float(np.quantile(scores, cfg.gradient_drop_quantile))
            keep = scores > threshold
            if always_keep is not None:
                keep[np.asarray(list(always_keep), dtype=int)] = True
            if not keep.any():
                keep[:] = True
            return keep
        return keep_mask_from_scores(
            scores, always_keep=always_keep, tolerance_ratio=cfg.fr_tolerance
        )

    def _reduce_qppnet(
        self, model: QPPNet, train: Sequence[LabeledPlan]
    ) -> Tuple[Dict[OperatorType, np.ndarray], float, Dict[OperatorType, np.ndarray]]:
        cfg = self.config
        datasets = model.operator_dataset(train, snapshot_set=self.snapshot_set)
        fold_means = {op: data.mean(axis=0) for op, data in datasets.items()}
        masks: Dict[OperatorType, np.ndarray] = {}
        encoder_dim = self.operator_encoder.dim
        cost_weight = np.zeros(1 + model.data_size)
        cost_weight[0] = 1.0
        self._last_scoring_seconds = 0.0
        for op, data in datasets.items():
            unit = model.units[op]
            score_start = time.perf_counter()
            if cfg.reduction == "diff":
                scores = difference_importance(
                    unit,
                    data,
                    n_references=cfg.n_references,
                    output_weights=cost_weight,
                    seed=(cfg.seed, op.value),
                )
            elif cfg.reduction == "gradient":
                scores = gradient_importance(unit, data, output_weights=cost_weight)
            else:
                raise TrainingError(f"unknown reduction {cfg.reduction!r}")
            self._last_scoring_seconds += time.perf_counter() - score_start
            masks[op] = self._keep_mask(scores[:encoder_dim])
        kept = sum(int(m.sum()) for m in masks.values())
        total = encoder_dim * max(len(masks), 1)
        ratio = 1.0 - kept / total if total else 0.0
        return masks, ratio, fold_means

    def _reduce_mscn(
        self, model: MSCN, train: Sequence[LabeledPlan]
    ) -> Tuple[np.ndarray, float, np.ndarray]:
        cfg = self.config
        matrix, global_slice = model.final_input_dataset(
            train, snapshot_set=self.snapshot_set
        )
        fold_mean = matrix.mean(axis=0)
        protected = list(range(global_slice.start))
        score_start = time.perf_counter()
        if cfg.reduction == "diff":
            scores = difference_importance(
                model.out_net,
                matrix,
                n_references=cfg.n_references,
                seed=cfg.seed,
            )
        elif cfg.reduction == "gradient":
            scores = gradient_importance(model.out_net, matrix)
        else:
            raise TrainingError(f"unknown reduction {cfg.reduction!r}")
        self._last_scoring_seconds = time.perf_counter() - score_start
        keep_full = self._keep_mask(scores, always_keep=protected)
        keep_global = keep_full[global_slice]
        ratio = 1.0 - float(keep_global.sum()) / max(len(keep_global), 1)
        return keep_global, ratio, fold_mean

    def _reduce_greedy(
        self, model: CostEstimator, train: Sequence[LabeledPlan]
    ) -> Tuple[np.ndarray, float]:
        """Algorithm 2 on the trained model, via zeroing masks."""
        cfg = self.config
        sample = list(train)[: cfg.greedy_sample]
        actual = np.array([r.latency_ms for r in sample])
        dim = (
            self.operator_encoder.dim
            if isinstance(model, QPPNet)
            else model.encoder.global_dim  # type: ignore[union-attr]
        )

        def evaluate(mask: np.ndarray) -> float:
            model.zero_mask = mask.astype(np.float64)  # type: ignore[union-attr]
            try:
                predictions = model.predict_many(
                    sample, snapshot_set=self.snapshot_set
                )
            finally:
                model.zero_mask = None  # type: ignore[union-attr]
            return float(numpy_q_error(predictions, actual).mean())

        keep, _ = greedy_reduction(
            evaluate, dim, max_rounds=cfg.greedy_max_rounds
        )
        return keep, 1.0 - float(keep.sum()) / dim

    # ------------------------------------------------------------------
    # end-to-end fit
    # ------------------------------------------------------------------
    def fit(self, train: Sequence[LabeledPlan]) -> QCFEResult:
        cfg = self.config
        self.snapshot_set, snapshot_seconds = self.fit_snapshot()
        base_stats = self.estimator.fit(train, snapshot_set=self.snapshot_set)

        masks: Dict[OperatorType, np.ndarray] = {}
        global_mask: Optional[np.ndarray] = None
        ratio = 0.0
        reduction_seconds = 0.0
        final_stats = base_stats
        # Warm-starting the reduced model (fold dropped dims into the
        # first-layer bias) is function-preserving ONLY when the
        # dropped dimensions are constant over the data — which is what
        # FR's exact-zero rule and greedy's q-error search select.  GD
        # also drops genuinely varying dimensions (its failure mode),
        # for which no sound warm start exists, so it retrains cold.
        warm = cfg.reduction in ("diff", "greedy")
        if cfg.reduction is not None:
            start = time.perf_counter()
            self._last_scoring_seconds = 0.0
            if isinstance(self.estimator, QPPNet):
                if cfg.reduction == "greedy":
                    keep, ratio = self._reduce_greedy(self.estimator, train)
                    datasets = self.estimator.operator_dataset(
                        train, snapshot_set=self.snapshot_set
                    )
                    masks = {op: keep.copy() for op in datasets}
                    fold_means = {
                        op: data.mean(axis=0) for op, data in datasets.items()
                    }
                else:
                    masks, ratio, fold_means = self._reduce_qppnet(
                        self.estimator, train
                    )
                reduction_seconds = time.perf_counter() - start
                self.estimator.set_masks(
                    masks, fold_means=fold_means if warm else None
                )
            else:
                mscn = self.estimator
                if cfg.reduction == "greedy":
                    global_mask, ratio = self._reduce_greedy(mscn, train)
                    matrix, _ = mscn.final_input_dataset(  # type: ignore[union-attr]
                        train, snapshot_set=self.snapshot_set
                    )
                    fold_mean = matrix.mean(axis=0)
                else:
                    global_mask, ratio, fold_mean = self._reduce_mscn(mscn, train)  # type: ignore[arg-type]
                reduction_seconds = time.perf_counter() - start
                mscn.set_global_mask(  # type: ignore[union-attr]
                    global_mask, fold_mean=fold_mean if warm else None
                )
            final_stats = self.estimator.fit(train, snapshot_set=self.snapshot_set)

        self.result = QCFEResult(
            train_stats=final_stats,
            base_train_stats=base_stats if cfg.reduction is not None else None,
            snapshot_seconds=snapshot_seconds,
            reduction_seconds=reduction_seconds,
            scoring_seconds=self._last_scoring_seconds,
            masks=masks,
            global_mask=global_mask,
            reduction_ratio=ratio,
        )
        return self.result

    def predict_many(self, labeled: Sequence[LabeledPlan]) -> np.ndarray:
        return self.estimator.predict_many(labeled, snapshot_set=self.snapshot_set)

    def export_bundle(self, name: Optional[str] = None):
        """Package the fitted pipeline as a deployable
        :class:`repro.serving.EstimatorBundle` for the serving layer.

        The bundle carries everything an online ``estimate()`` needs:
        the (reduced, retrained) estimator, the snapshot set it was
        trained with, the installed keep-masks and the benchmark whose
        catalog parses/plans incoming SQL.
        """
        # Local import: serving sits above core in the layer stack.
        from ..serving.registry import EstimatorBundle

        result = self.result
        cfg = self.config
        return EstimatorBundle(
            name=name or f"{self.benchmark.name}:{cfg.model}",
            estimator=self.estimator,
            benchmark=self.benchmark,
            snapshot_set=self.snapshot_set,
            masks=dict(result.masks) if result is not None else {},
            global_mask=result.global_mask if result is not None else None,
            metadata={
                "model": cfg.model,
                "snapshot_source": cfg.snapshot_source,
                "reduction": cfg.reduction,
                "reduction_ratio": result.reduction_ratio if result else 0.0,
                "trained": result is not None,
            },
        )

    def evaluate(self, test: Sequence[LabeledPlan]) -> EvaluationReport:
        train_seconds = (
            self.result.train_stats.train_seconds if self.result is not None else 0.0
        )
        return evaluate_estimator(
            self.estimator, test, snapshot_set=self.snapshot_set,
            train_seconds=train_seconds,
        )
