"""QCFE core: the paper's primary contribution."""

from .formulas import FORMULAS, LINEAR, NESTED_LOOP, NLOGN, LogicalFormula, operator_inputs
from .snapshot import (
    MIN_SAMPLES,
    FeatureSnapshot,
    SnapshotSet,
    collect_operator_samples,
    fit_snapshot,
    fit_snapshot_from_queries,
    fit_snapshot_set,
)
from .templates import (
    SimplifiedTemplate,
    TemplateInfo,
    generate_simplified_queries,
    generate_simplified_templates,
    instantiate_simplified,
    parse_template_info,
)
from .reduction import (
    difference_importance,
    difference_multipliers,
    keep_mask_from_scores,
    reduce_features,
)
from .greedy import greedy_reduction
from .gradient import gradient_importance, gradient_reduction
from .granularity import (
    FineGrainedSnapshot,
    fit_fine_grained,
    residual_improvement,
)
from .recall import FeatureRecall, collect_baselines
from .pipeline import QCFE, QCFEConfig, QCFEResult

__all__ = [
    "FORMULAS",
    "LINEAR",
    "NLOGN",
    "NESTED_LOOP",
    "LogicalFormula",
    "operator_inputs",
    "FeatureSnapshot",
    "SnapshotSet",
    "MIN_SAMPLES",
    "collect_operator_samples",
    "fit_snapshot",
    "fit_snapshot_from_queries",
    "fit_snapshot_set",
    "TemplateInfo",
    "SimplifiedTemplate",
    "parse_template_info",
    "generate_simplified_templates",
    "instantiate_simplified",
    "generate_simplified_queries",
    "difference_importance",
    "difference_multipliers",
    "keep_mask_from_scores",
    "reduce_features",
    "greedy_reduction",
    "gradient_importance",
    "gradient_reduction",
    "FineGrainedSnapshot",
    "fit_fine_grained",
    "residual_improvement",
    "FeatureRecall",
    "collect_baselines",
    "QCFE",
    "QCFEConfig",
    "QCFEResult",
]
