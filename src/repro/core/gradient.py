"""Gradient-based feature importance (the paper's GD baseline).

Scores each input dimension by the expected magnitude of the model's
partial derivative, gathered with ordinary back-propagation.  This is
the method Section IV-B shows to be unreliable for cost models: one-hot
dimensions are discrete (the local derivative is meaningless) and ReLU
units dead across the dataset contribute exactly zero gradient, so GD
prunes aggressively but partly *wrongly* — reproduced in Figure 6/7.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..nn.layers import Sequential
from ..nn.tensor import Tensor
from .reduction import keep_mask_from_scores


def gradient_importance(
    model: Sequential,
    data: np.ndarray,
    output_weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """I_gradient(k) = E_x |dy/dx_k| over the dataset.

    ``output_weights`` selects the model outputs to differentiate (for
    QPPNet units, a one-hot on the cost output).
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    x = Tensor(data, requires_grad=True)
    out = model(x)
    if output_weights is not None:
        out = out * Tensor(np.asarray(output_weights).reshape(1, -1))
    out.sum().backward()
    assert x.grad is not None
    return np.abs(x.grad).mean(axis=0)


def gradient_reduction(
    model: Sequential,
    data: np.ndarray,
    always_keep: Optional[Sequence[int]] = None,
    output_weights: Optional[np.ndarray] = None,
    tolerance_ratio: float = 1e-3,
) -> Tuple[np.ndarray, np.ndarray]:
    """Scores + keep mask, GD flavour (same filter rule as FR)."""
    scores = gradient_importance(model, data, output_weights=output_weights)
    return scores, keep_mask_from_scores(
        scores, always_keep=always_keep, tolerance_ratio=tolerance_ratio
    )
