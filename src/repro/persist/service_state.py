"""Whole-service state assembly: everything a warm boot needs.

This module knows how to turn the live serving stack into one state
tree (and back):

- :class:`~repro.serving.EstimatorBundle` — estimator weights + config
  (via the models' ``state_dict``/``from_state``), the snapshot set,
  keep-masks and metadata.  The benchmark rides along *by name* and is
  rebuilt through :func:`repro.workload.collect.get_benchmark`, which
  is deterministic — catalogs, statistics and encoders come out
  identical, so restored predictions are bit-identical.
- :class:`~repro.serving.EstimatorRegistry` — every bundle at its
  exact recorded version plus the per-name deployment counters, so
  feature-cache keys (which embed versions) stay valid and post-boot
  hot-swaps keep counting where the old process stopped.
- :class:`~repro.serving.SnapshotStore` — fingerprints, knob vectors
  and fitted snapshots in LRU order.
- :class:`~repro.serving.FeatureCache` — prepared encodings whose form
  the codec recognises (unknown forms are skipped, counted in the
  state's ``skipped`` field: warmth is best-effort).  The service's
  template-skeleton cache is exported the same way (``template_cache``
  section; absent in pre-template checkpoints, which restore fine).
- the adaptation loop — per-bundle recall state and the labelled
  feedback windows that drive refits.

Unknown estimator kinds, missing benchmarks and malformed trees raise
:class:`~repro.errors.CheckpointError`; nothing here ever half-applies
a state (the registry/store/cache installs happen only after the whole
tree decoded).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from ..core.snapshot import SnapshotSet
from ..engine.operators import OperatorType
from ..errors import CheckpointError, ReproError
from ..backends import DEFAULT_BACKEND
from ..models.mscn import MSCN
from ..models.native import NativeCostEstimator
from ..models.postgres import PostgresCostEstimator
from ..models.qppnet import QPPNet
from ..serving.registry import EstimatorBundle
from .codec import (
    decode_prepared,
    encode_prepared,
    labeled_plan_from_state,
    labeled_plan_to_state,
)

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..serving.service import CostService
    from ..workload.collect import Benchmark


# ----------------------------------------------------------------------
# estimators
# ----------------------------------------------------------------------
def estimator_to_state(estimator: object) -> Dict[str, object]:
    """The estimator's ``state_dict()`` (must carry a ``kind`` tag)."""
    state_dict = getattr(estimator, "state_dict", None)
    if state_dict is None:
        raise CheckpointError(
            f"estimator {type(estimator).__name__} has no state_dict(); "
            "cannot checkpoint it"
        )
    state = state_dict()
    if not isinstance(state, Mapping) or "kind" not in state:
        raise CheckpointError(
            f"estimator {type(estimator).__name__}.state_dict() must return "
            "a mapping with a 'kind' tag"
        )
    return dict(state)


def estimator_from_state(
    state: Mapping[str, object], benchmark: Optional["Benchmark"]
):
    """Dispatch on the state's ``kind`` tag; encoder-backed models need
    *benchmark* to rebuild their (deterministic) encoders."""
    from ..featurization.encoding import OperatorEncoder
    from ..featurization.mscn_features import MSCNEncoder

    kind = state.get("kind")
    try:
        if kind == "postgres":
            return PostgresCostEstimator.from_state(state)
        if kind == "native_cost":
            return NativeCostEstimator.from_state(state)
        if kind in ("qppnet", "mscn"):
            if benchmark is None:
                raise CheckpointError(
                    f"a {kind} checkpoint needs its benchmark to rebuild the "
                    "encoder, but the bundle state carries none"
                )
            op_encoder = OperatorEncoder(benchmark.catalog)
            if kind == "qppnet":
                return QPPNet.from_state(state, op_encoder)
            return MSCN.from_state(
                state, MSCNEncoder(benchmark.catalog, op_encoder)
            )
    except CheckpointError:
        raise
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        # A hash-valid checkpoint whose estimator state this build
        # cannot rebuild (an operator the enum no longer has, a weight
        # shape the architecture rejects) must fail over to a cold
        # start, not crash the boot.
        raise CheckpointError(
            f"cannot rebuild {kind!r} estimator from checkpoint: {exc}"
        ) from exc
    raise CheckpointError(
        f"unknown estimator kind {kind!r} in checkpoint "
        "(known: postgres, native_cost, qppnet, mscn)"
    )


# ----------------------------------------------------------------------
# bundles
# ----------------------------------------------------------------------
def _metadata_to_state(metadata: Mapping[str, object]) -> Dict[str, object]:
    """Bundle metadata with typed keys flattened to plain data."""
    out: Dict[str, object] = {}
    for key, value in metadata.items():
        if key == "recall_baselines" and isinstance(value, Mapping):
            out[key] = {
                op.value if isinstance(op, OperatorType) else str(op): np.asarray(mean)
                for op, mean in value.items()
            }
        else:
            out[key] = value
    return out


def _metadata_from_state(state: Mapping[str, object]) -> Dict[str, object]:
    out: Dict[str, object] = dict(state)
    baselines = out.get("recall_baselines")
    if isinstance(baselines, Mapping):
        out["recall_baselines"] = {
            OperatorType(op): np.asarray(mean, dtype=np.float64)
            for op, mean in baselines.items()
        }
    return out


def bundle_to_state(bundle: EstimatorBundle) -> Dict[str, object]:
    """One deployable bundle as plain data + arrays."""
    return {
        "name": bundle.name,
        "version": bundle.version,
        "backend": bundle.backend,
        "benchmark": bundle.benchmark.name if bundle.benchmark else None,
        "estimator": estimator_to_state(bundle.estimator),
        "snapshot_set": (
            bundle.snapshot_set.state_dict() if bundle.snapshot_set else None
        ),
        "masks": {
            op.value: np.asarray(mask, dtype=bool)
            for op, mask in bundle.masks.items()
        },
        "global_mask": (
            None
            if bundle.global_mask is None
            else np.asarray(bundle.global_mask, dtype=bool)
        ),
        "metadata": _metadata_to_state(bundle.metadata),
    }


def bundle_from_state(
    state: Mapping[str, object],
    benchmarks: Optional[Dict[str, "Benchmark"]] = None,
) -> EstimatorBundle:
    """Rebuild a bundle; *benchmarks* memoises
    :func:`~repro.workload.collect.get_benchmark` across the bundles
    of one checkpoint (they usually share one)."""
    from ..workload.collect import get_benchmark

    benchmark: Optional["Benchmark"] = None
    benchmark_name = state.get("benchmark")
    if benchmark_name is not None:
        cache = benchmarks if benchmarks is not None else {}
        if benchmark_name not in cache:
            try:
                cache[benchmark_name] = get_benchmark(str(benchmark_name))
            except ReproError as exc:
                raise CheckpointError(
                    f"checkpoint names unknown benchmark {benchmark_name!r}"
                ) from exc
        benchmark = cache[benchmark_name]
    snapshot_state = state.get("snapshot_set")
    try:
        snapshot_set = (
            None
            if snapshot_state is None
            else SnapshotSet.from_state(snapshot_state)
        )
        masks = {
            OperatorType(op): np.asarray(mask, dtype=bool)
            for op, mask in dict(state.get("masks", {})).items()
        }
    except CheckpointError:
        raise
    except ReproError as exc:
        raise CheckpointError(f"invalid bundle state: {exc}") from exc
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"invalid bundle state: {exc}") from exc
    global_mask = state.get("global_mask")
    try:
        return EstimatorBundle(
            name=str(state.get("name", "")),
            estimator=estimator_from_state(
                dict(state.get("estimator", {})), benchmark
            ),
            benchmark=benchmark,
            snapshot_set=snapshot_set,
            masks=masks,
            global_mask=(
                None
                if global_mask is None
                else np.asarray(global_mask, dtype=bool)
            ),
            metadata=_metadata_from_state(dict(state.get("metadata", {}))),
            version=int(state.get("version", 0)),
            # Absent in schema-v1 (pre-backend) checkpoints: those
            # bundles were all postgres-family by construction.
            backend=str(state.get("backend") or DEFAULT_BACKEND),
        )
    except CheckpointError:
        raise
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"invalid bundle state: {exc}") from exc


# ----------------------------------------------------------------------
# whole-service state
# ----------------------------------------------------------------------
def service_state(service: "CostService") -> Dict[str, object]:
    """Everything a :class:`~repro.serving.CostService` warm boot
    needs, as one encodable tree."""
    state: Dict[str, object] = {
        "kind": "cost_service",
        "registry": {
            "bundles": [
                bundle_to_state(b) for b in service.registry.export_bundles()
            ],
            "versions": service.registry.versions_snapshot(),
        },
    }
    if service.snapshot_store is not None:
        state["snapshot_store"] = {
            "entries": [
                {
                    "namespace": namespace,
                    "signature": signature,
                    "vector": vector,
                    "snapshot": snapshot.state_dict(),
                }
                for namespace, signature, vector, snapshot
                in service.snapshot_store.export_entries()
            ]
        }
    cache_entries: List[Dict[str, object]] = []
    skipped = 0
    for key, value in service.cache.export_entries():
        encoded = encode_prepared(value)
        if encoded is None:
            skipped += 1
            continue
        cache_entries.append({"key": key, "prepared": encoded})
    state["feature_cache"] = {"entries": cache_entries, "skipped": skipped}
    template_entries: List[Dict[str, object]] = []
    template_skipped = 0
    for key, value in service.template_cache.export_entries():
        encoded = encode_prepared(value)
        if encoded is None:
            template_skipped += 1
            continue
        template_entries.append({"key": key, "prepared": encoded})
    state["template_cache"] = {
        "entries": template_entries,
        "skipped": template_skipped,
    }
    if service.adaptation is not None:
        watchers: Dict[str, object] = {}
        for watcher in service.adaptation.watchers():
            watchers[watcher.name] = {
                "recall": watcher.recall.state_dict(),
                "global_mode": watcher.global_mode,
                "drift_pending": watcher.drift_pending,
                "miss_rate_pending": watcher.miss_rate_pending,
                "window": [
                    labeled_plan_to_state(record)
                    for record in watcher.window_records()
                ],
            }
        state["adaptation"] = {"watchers": watchers}
    return state


def restore_service(service: "CostService", state: Mapping[str, object]) -> None:
    """Apply a decoded :func:`service_state` tree onto *service*.

    The whole tree is rebuilt (bundles, snapshots, cache values) before
    anything is installed, so a malformed checkpoint raises without
    leaving the service half-restored.  Restored bundles re-attach
    adaptation watchers exactly like :meth:`CostService.deploy` does;
    watcher drift state and feedback windows are then overwritten from
    the checkpoint.
    """
    if state.get("kind") != "cost_service":
        raise CheckpointError(
            f"checkpoint state kind {state.get('kind')!r} is not a "
            "cost_service state"
        )
    benchmarks: Dict[str, "Benchmark"] = {}
    registry_state = dict(state.get("registry", {}))
    bundles = [
        bundle_from_state(entry, benchmarks)
        for entry in registry_state.get("bundles", [])
    ]
    versions = {
        str(name): int(version)
        for name, version in dict(registry_state.get("versions", {})).items()
    }
    store_entries = []
    store_state = state.get("snapshot_store")
    if store_state is not None:
        from ..core.snapshot import FeatureSnapshot

        for entry in dict(store_state).get("entries", []):
            try:
                store_entries.append(
                    (
                        str(entry["namespace"]),
                        str(entry["signature"]),
                        np.asarray(entry["vector"], dtype=np.float64),
                        FeatureSnapshot.from_state(entry["snapshot"]),
                    )
                )
            except ReproError as exc:
                raise CheckpointError(
                    f"invalid snapshot-store entry: {exc}"
                ) from exc
            except (KeyError, TypeError, ValueError) as exc:
                raise CheckpointError(
                    f"invalid snapshot-store entry: {exc}"
                ) from exc
    cache_entries = [
        (str(entry["key"]), decode_prepared(dict(entry["prepared"])))
        for entry in dict(state.get("feature_cache", {})).get("entries", [])
    ]
    # Absent in checkpoints written before template memoization: the
    # template cache simply starts cold, like any other miss.
    template_entries = [
        (str(entry["key"]), decode_prepared(dict(entry["prepared"])))
        for entry in dict(state.get("template_cache", {})).get("entries", [])
    ]
    adaptation_state = state.get("adaptation")
    watcher_states: Dict[str, Dict[str, object]] = {}
    if adaptation_state is not None:
        for name, entry in dict(dict(adaptation_state).get("watchers", {})).items():
            entry = dict(entry)
            watcher_states[str(name)] = {
                "recall": dict(entry.get("recall", {})),
                "drift_pending": bool(entry.get("drift_pending", False)),
                "miss_rate_pending": bool(entry.get("miss_rate_pending", False)),
                "window": [
                    labeled_plan_from_state(record)
                    for record in entry.get("window", [])
                ],
            }

    # Everything decoded cleanly: install.
    for bundle in bundles:
        service.registry.install_restored(
            bundle, version_counter=versions.get(bundle.name)
        )
        if service.adaptation is not None:
            service.adaptation.watch(bundle)
    if store_entries and service.snapshot_store is not None:
        service.snapshot_store.restore_entries(store_entries)
    if cache_entries:
        service.cache.restore_entries(cache_entries)
    if template_entries:
        service.template_cache.restore_entries(template_entries)
    if service.adaptation is not None:
        for name, entry in watcher_states.items():
            try:
                service.adaptation.restore_watcher(
                    name,
                    entry["recall"],
                    entry["window"],
                    drift_pending=entry["drift_pending"],
                    miss_rate_pending=entry["miss_rate_pending"],
                )
            except ReproError:
                # Drift state is advisory: a recall layout this build
                # cannot rebuild must not fail the (already installed)
                # registry/store/cache restore — the watcher simply
                # starts fresh, as it would on an offline retrain.
                continue


__all__ = [
    "bundle_from_state",
    "bundle_to_state",
    "estimator_from_state",
    "estimator_to_state",
    "restore_service",
    "service_state",
]
