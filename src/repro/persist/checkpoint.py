"""The on-disk checkpoint container: manifest + blobs, written atomically.

A checkpoint is a single file::

    magic          b"QCFE-CKPT\\x00"          (10 bytes)
    manifest_len   big-endian uint64           (8 bytes)
    manifest       UTF-8 JSON                  (manifest_len bytes)
    payload        concatenated binary blobs   (rest of the file)

The manifest carries ``schema_version``, free-form ``meta``, the
encoded ``state`` tree (arrays as blob references, see
:mod:`repro.persist.codec`) and a ``blobs`` table of
``{offset, length, sha256}`` entries with offsets relative to the
payload region, plus a ``payload_sha256`` over the whole payload.

Durability invariants:

- **Atomic visibility** — :func:`save_checkpoint` writes a ``.tmp``
  sibling, flushes and fsyncs it, then ``os.replace``\\ s it into
  place.  A reader can never observe a half-written checkpoint under
  the final name; a crash mid-write leaves (at most) a ``.tmp`` file
  that no loader ever considers.
- **Integrity on load** — :func:`load_checkpoint` verifies magic,
  manifest framing, per-blob bounds and hashes, and the payload hash;
  any mismatch raises :class:`~repro.errors.CheckpointCorruptError`.
- **Versioning** — a manifest whose ``schema_version`` this build does
  not understand raises a clean :class:`~repro.errors.CheckpointError`
  (never a crash), so future format changes degrade to a cold start.
- **Bounded retention** — :func:`write_retained` numbers checkpoints
  ``ckpt-<seq>.qcp`` and prunes the oldest beyond ``retain``;
  :func:`restore_latest` walks newest → oldest, skipping unloadable
  files, so one corrupt write never erases a good predecessor.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
import struct
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import CheckpointCorruptError, CheckpointError
from .codec import BlobStore, decode_state, encode_state

#: File magic: identifies (and versions the framing of) the container.
MAGIC = b"QCFE-CKPT\x00"
#: Manifest schema this build writes.  v2 added the per-bundle
#: ``backend`` field (multi-backend routing); v1 checkpoints restore
#: with every bundle defaulting to the default backend.
SCHEMA_VERSION = 2
#: Manifest schemas this build reads.
SUPPORTED_SCHEMA_VERSIONS = frozenset({1, 2})

_HEADER = struct.Struct(">Q")
_NAME_RE = re.compile(r"^ckpt-(\d{8})\.qcp$")
#: Suffix of in-flight writes; never matched by :func:`list_checkpoints`.
TMP_SUFFIX = ".tmp"


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def save_checkpoint(
    state: object,
    path: "pathlib.Path | str",
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Serialize *state* to *path* atomically; returns the manifest.

    The temp file is written next to *path* (same filesystem, so the
    final ``os.replace`` is atomic) and removed on any failure.
    """
    path = pathlib.Path(path)
    store = BlobStore()
    encoded = encode_state(state, store)
    offsets: List[Dict[str, object]] = []
    offset = 0
    for blob in store.blobs:
        offsets.append(
            {"offset": offset, "length": len(blob), "sha256": _sha256(blob)}
        )
        offset += len(blob)
    payload = b"".join(store.blobs)
    manifest: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "meta": dict(meta or {}),
        "state": encoded,
        "blobs": offsets,
        "payload_sha256": _sha256(payload),
    }
    manifest_bytes = json.dumps(manifest, sort_keys=True).encode("utf-8")
    tmp = path.with_name(path.name + TMP_SUFFIX)
    try:
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            handle.write(_HEADER.pack(len(manifest_bytes)))
            handle.write(manifest_bytes)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)
    return manifest


def _fsync_directory(directory: pathlib.Path) -> None:
    """Best-effort fsync of *directory*'s metadata, so a power cut
    right after a rename (or a retention unlink) cannot roll the
    directory back to a pre-rename view.  Platforms that refuse
    directory fsync (Windows) are silently skipped — the file contents
    themselves are already fsynced."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _parse_manifest(
    data: bytes, label: object
) -> Tuple[Dict[str, object], int]:
    """Frame-check *data* and parse its manifest; returns the manifest
    and the payload region's start offset.

    Raises :class:`CheckpointCorruptError` on bad magic/framing and
    :class:`CheckpointError` on an unknown ``schema_version``.
    """
    head = len(MAGIC) + _HEADER.size
    if len(data) < head or not data.startswith(MAGIC):
        raise CheckpointCorruptError(
            f"{label}: not a QCFE checkpoint (bad magic or truncated header)"
        )
    (manifest_len,) = _HEADER.unpack(data[len(MAGIC):head])
    if len(data) < head + manifest_len:
        raise CheckpointCorruptError(f"{label}: truncated manifest")
    try:
        manifest = json.loads(data[head:head + manifest_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(f"{label}: unreadable manifest") from exc
    if not isinstance(manifest, dict):
        raise CheckpointCorruptError(f"{label}: manifest is not an object")
    version = manifest.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        supported = ", ".join(str(v) for v in sorted(SUPPORTED_SCHEMA_VERSIONS))
        raise CheckpointError(
            f"{label}: unknown checkpoint schema_version {version!r} "
            f"(this build reads {supported}); refusing to guess"
        )
    return manifest, head + manifest_len


def read_manifest(path: "pathlib.Path | str") -> Dict[str, object]:
    """Parse and frame-check *path*'s manifest (no blob verification)."""
    manifest, _ = _parse_manifest(pathlib.Path(path).read_bytes(), path)
    return manifest


def load_checkpoint(
    path: "pathlib.Path | str",
) -> Tuple[object, Dict[str, object]]:
    """Load and fully verify *path*; returns ``(state, manifest)``."""
    path = pathlib.Path(path)
    data = path.read_bytes()
    manifest, payload_start = _parse_manifest(data, path)
    payload = data[payload_start:]
    if manifest.get("payload_sha256") != _sha256(payload):
        raise CheckpointCorruptError(
            f"{path}: payload hash mismatch (truncated or modified blobs)"
        )
    blobs: List[bytes] = []
    for index, entry in enumerate(manifest.get("blobs", [])):
        try:
            offset, length = int(entry["offset"]), int(entry["length"])
            digest = str(entry["sha256"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointCorruptError(
                f"{path}: malformed blob table entry {index}"
            ) from exc
        if offset < 0 or length < 0 or offset + length > len(payload):
            raise CheckpointCorruptError(
                f"{path}: blob {index} escapes the payload region"
            )
        blob = payload[offset:offset + length]
        if _sha256(blob) != digest:
            raise CheckpointCorruptError(f"{path}: blob {index} hash mismatch")
        blobs.append(blob)
    state = decode_state(manifest.get("state"), BlobStore(blobs))
    return state, manifest


# ----------------------------------------------------------------------
# retention: numbered checkpoints in a directory
# ----------------------------------------------------------------------
def checkpoint_path(directory: "pathlib.Path | str", seq: int) -> pathlib.Path:
    """The canonical file name of checkpoint *seq* under *directory*."""
    return pathlib.Path(directory) / f"ckpt-{seq:08d}.qcp"


def list_checkpoints(
    directory: "pathlib.Path | str",
) -> List[Tuple[int, pathlib.Path]]:
    """``(seq, path)`` for every checkpoint-named file, oldest first.

    Temp files and foreign names are ignored; a missing directory is
    simply empty.
    """
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    out: List[Tuple[int, pathlib.Path]] = []
    for entry in directory.iterdir():
        match = _NAME_RE.match(entry.name)
        if match is not None:
            out.append((int(match.group(1)), entry))
    return sorted(out)


def write_retained(
    state: object,
    directory: "pathlib.Path | str",
    retain: int = 3,
    meta: Optional[Mapping[str, object]] = None,
) -> pathlib.Path:
    """Write the next numbered checkpoint under *directory*, pruning
    the oldest files beyond *retain*; returns the new path."""
    if retain < 1:
        raise CheckpointError(f"retain must be >= 1, got {retain}")
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    existing = list_checkpoints(directory)
    seq = (existing[-1][0] + 1) if existing else 1
    path = checkpoint_path(directory, seq)
    save_checkpoint(state, path, meta=meta)
    for _, old in list_checkpoints(directory)[:-retain]:
        try:
            old.unlink()
        except OSError:
            pass  # retention is best-effort; the new write already landed
    return path


def restore_latest(
    directory: "pathlib.Path | str",
) -> Tuple[object, Dict[str, object], pathlib.Path]:
    """Load the newest *loadable* checkpoint under *directory*.

    Walks newest → oldest; corrupt, version-mismatched or unreadable
    files are skipped — a file pruned between the directory listing
    and the read (another process's retention), or one with dead
    permissions, fails over exactly like a corrupt one.  That is the
    failover-to-an-older-checkpoint half of the warm-boot contract;
    the failover-to-cold half lives in the callers, which catch the
    final :class:`CheckpointError`.  Raises :class:`CheckpointError`
    when no checkpoint loads, naming every file tried.
    """
    attempts: List[str] = []
    for _, path in reversed(list_checkpoints(directory)):
        try:
            state, manifest = load_checkpoint(path)
            return state, manifest, path
        except (CheckpointError, OSError) as exc:
            attempts.append(f"{path.name}: {exc}")
    if attempts:
        raise CheckpointError(
            f"no loadable checkpoint under {directory} "
            f"({len(attempts)} tried): " + "; ".join(attempts)
        )
    raise CheckpointError(f"no checkpoint files under {directory}")


#: Sequence export so ``from .checkpoint import *`` stays explicit.
__all__: Sequence[str] = [
    "MAGIC",
    "SCHEMA_VERSION",
    "TMP_SUFFIX",
    "checkpoint_path",
    "list_checkpoints",
    "load_checkpoint",
    "read_manifest",
    "restore_latest",
    "save_checkpoint",
    "write_retained",
]
