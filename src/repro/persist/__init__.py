"""repro.persist — durable checkpoints & warm restart for the serving
stack.

Everything the serving tier computes that is expensive to recompute —
trained estimator weights, fitted feature snapshots, prepared feature
encodings, adaptation drift state and feedback windows — can be
serialized into a schema-versioned, integrity-hashed checkpoint file
and restored into a fresh process, producing **bit-identical**
predictions:

- :mod:`repro.persist.codec` — the state-tree codec (JSON manifest +
  binary array blobs, plan/labelled-plan codecs);
- :mod:`repro.persist.checkpoint` — the container format: atomic
  write-temp-then-rename, per-blob and payload hashes, bounded
  retention, newest-loadable-first restore;
- :mod:`repro.persist.service_state` — whole-
  :class:`~repro.serving.CostService` state assembly (registry,
  snapshot store, feature cache, adaptation loop);
- :mod:`repro.persist.checkpointer` — the background
  :class:`Checkpointer` thread (interval + dirty-triggered).

The warm-boot entry points most callers want are on the services
themselves: :meth:`repro.serving.CostService.save` /
:meth:`~repro.serving.CostService.restore` and
:meth:`repro.cluster.ClusterService.save` /
:meth:`~repro.cluster.ClusterService.restore` /
:meth:`~repro.cluster.ClusterService.restart_shard`.  A corrupt or
version-mismatched checkpoint never crashes a boot: restore falls back
to older retained checkpoints, then to a cold start.
"""

from typing import Optional, Tuple

import pathlib

from ..errors import CheckpointCorruptError, CheckpointError
from .checkpoint import (
    SCHEMA_VERSION,
    checkpoint_path,
    list_checkpoints,
    load_checkpoint,
    read_manifest,
    restore_latest,
    save_checkpoint,
    write_retained,
)
from .checkpointer import Checkpointer, dirty_token
from .codec import (
    BlobStore,
    decode_state,
    encode_state,
    labeled_plan_from_state,
    labeled_plan_to_state,
    plan_from_state,
    plan_to_state,
)
from .service_state import (
    bundle_from_state,
    bundle_to_state,
    estimator_from_state,
    estimator_to_state,
    restore_service,
    service_state,
)

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..serving.service import CostService


def save_service_checkpoint(
    service: "CostService",
    directory: "pathlib.Path | str",
    retain: int = 3,
) -> pathlib.Path:
    """Write *service*'s full state as the next retained checkpoint
    under *directory*; returns the new file's path."""
    return write_retained(
        service_state(service),
        directory,
        retain=retain,
        meta={"kind": "cost_service"},
    )


def restore_service_checkpoint(
    service: "CostService", directory: "pathlib.Path | str"
) -> Tuple[bool, Optional[pathlib.Path]]:
    """Warm-boot *service* from the newest loadable checkpoint under
    *directory*.

    Returns ``(True, path)`` on a warm boot.  Returns ``(False, None)``
    — the cold-start failover — when the directory holds no checkpoint,
    or every checkpoint is corrupt, version-mismatched or otherwise
    unrestorable.  It never raises for bad checkpoints: a restart must
    come up cold rather than crash-loop on damaged state.
    """
    try:
        state, _, path = restore_latest(directory)
        restore_service(service, state)
        return True, path
    except CheckpointError:
        return False, None


__all__ = [
    "BlobStore",
    "CheckpointCorruptError",
    "CheckpointError",
    "Checkpointer",
    "SCHEMA_VERSION",
    "bundle_from_state",
    "bundle_to_state",
    "checkpoint_path",
    "decode_state",
    "dirty_token",
    "encode_state",
    "estimator_from_state",
    "estimator_to_state",
    "labeled_plan_from_state",
    "labeled_plan_to_state",
    "list_checkpoints",
    "load_checkpoint",
    "plan_from_state",
    "plan_to_state",
    "read_manifest",
    "restore_latest",
    "restore_service",
    "restore_service_checkpoint",
    "save_checkpoint",
    "save_service_checkpoint",
    "service_state",
    "write_retained",
]
