"""The background checkpointing loop: interval + dirty-triggered.

A :class:`Checkpointer` owns one service's durability: every
``interval_s`` it wakes, asks the service for a cheap *dirty token*
(registry versions, store/cache sizes, adaptation window fill — no
weights touched), and only when the token moved since the last
successful write does it serialize a full checkpoint through
:func:`repro.persist.checkpoint.write_retained` (atomic
write-temp-then-rename, bounded retention).  A clean service costs one
tuple comparison per interval, not a multi-megabyte serialization.

``mark_dirty()`` forces the next wake to write regardless of the
token; ``checkpoint_now()`` writes synchronously (the warm-restart
bench and shutdown hooks use it).  Write failures are counted and
swallowed — a full disk must degrade durability, never serving — and
the previous retained checkpoints stay untouched because the atomic
rename never replaces a good file with a partial one.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

import pathlib

from ..errors import CheckpointError
from ..obs.lockwatch import make_condition, make_lock
from .checkpoint import write_retained

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..serving.service import CostService


def dirty_token(service: "CostService") -> tuple:
    """A cheap, hashable summary of the service's persistable state.

    Changes whenever something a checkpoint covers changes: a deploy or
    hot-swap (registry versions), a new fitted snapshot (store size), a
    new prepared encoding (cache size) or fresh feedback (adaptation
    window sizes).  Collisions only delay a write by one interval.
    """
    registry = service.registry
    token = (
        tuple(sorted(registry.versions_snapshot().items())),
        len(service.snapshot_store) if service.snapshot_store is not None else -1,
        len(service.cache),
        tuple(
            sorted(
                (watcher.name, watcher.window_size())
                for watcher in service.adaptation.watchers()
            )
        )
        if service.adaptation is not None
        else (),
    )
    return token


class Checkpointer:
    """Periodically checkpoints one :class:`CostService` to a directory."""

    def __init__(
        self,
        service: "CostService",
        directory: "pathlib.Path | str",
        interval_s: float = 30.0,
        retain: int = 3,
        background: bool = True,
    ):
        """Start checkpointing *service* into *directory*.

        ``interval_s`` is the wake period; ``retain`` bounds how many
        numbered checkpoints are kept.  With ``background=False`` no
        thread starts and writes happen only on explicit
        :meth:`checkpoint_now` calls (deterministic mode for tests).
        """
        if interval_s <= 0:
            raise CheckpointError(
                f"checkpoint interval must be > 0, got {interval_s}"
            )
        self.service = service
        self.directory = pathlib.Path(directory)
        self.interval_s = float(interval_s)
        self.retain = int(retain)
        self._cond = make_condition("persist.checkpointer")
        self._closed = False
        self._dirty = False
        self._last_token: Optional[tuple] = None
        self._stats_lock = make_lock("persist.checkpointer_stats")
        self.writes = 0
        self.skipped_clean = 0
        self.errors = 0
        self.last_write_unix = 0.0
        self.last_path: Optional[pathlib.Path] = None
        # Durability is part of the service's one observable surface:
        # the write/skip/error counters join its metrics registry (and
        # leave it again on close), and writes/failures emit events.
        service.metrics.register_collector("checkpointer", self.stats_snapshot)
        self._thread: Optional[threading.Thread] = None
        if background:
            self._thread = threading.Thread(
                target=self._run, name="checkpointer", daemon=True
            )
            self._thread.start()

    # ------------------------------------------------------------------
    def mark_dirty(self) -> None:
        """Force a write on the next wake (and wake the loop now)."""
        with self._cond:
            self._dirty = True
            self._cond.notify_all()

    def checkpoint_now(self, force: bool = False) -> Optional[pathlib.Path]:
        """Write a checkpoint synchronously if the service is dirty (or
        *force*); returns the new path, or None when skipped clean.
        Write failures are swallowed into the ``errors`` counter —
        callers needing the exception should call
        :meth:`repro.serving.CostService.save` directly."""
        with self._cond:
            forced = force or self._dirty
            self._dirty = False
        token = dirty_token(self.service)
        if not forced and token == self._last_token:
            with self._stats_lock:
                self.skipped_clean += 1
            return None
        try:
            path = write_retained(
                self.service.state_dict(),
                self.directory,
                retain=self.retain,
                meta={"kind": "cost_service"},
            )
        except Exception as exc:
            # Keep the write owed: a mark_dirty() whose state change the
            # token cannot see must survive a transient failure (disk
            # full), or the change would never be persisted once the
            # disk recovers.
            if forced:
                with self._cond:
                    self._dirty = True
            with self._stats_lock:
                self.errors += 1
            self.service.events.emit(
                "checkpoint_error",
                directory=str(self.directory),
                error=repr(exc),
            )
            return None
        self._last_token = token
        with self._stats_lock:
            self.writes += 1
            self.last_write_unix = time.time()
            self.last_path = path
        self.service.events.emit("checkpoint_write", path=str(path))
        return path

    def stats_snapshot(self) -> Dict[str, object]:
        """Write/skip/error counters, copied under the stats lock."""
        with self._stats_lock:
            return {
                "writes": self.writes,
                "skipped_clean": self.skipped_clean,
                "errors": self.errors,
                "last_write_unix": self.last_write_unix,
                "last_path": str(self.last_path) if self.last_path else None,
            }

    # ------------------------------------------------------------------
    def _run(self) -> None:  # pragma: no cover - exercised via threads
        """The loop: sleep an interval (or until marked dirty), write."""
        while True:
            with self._cond:
                if self._closed:
                    return
                self._cond.wait(self.interval_s)
                if self._closed:
                    return
            self.checkpoint_now()

    def close(self, final_checkpoint: bool = False) -> None:
        """Stop the loop (optionally writing one last checkpoint)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        if final_checkpoint:
            self.checkpoint_now()
        self.service.metrics.unregister_collector("checkpointer")

    def __enter__(self) -> "Checkpointer":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: stop the loop."""
        self.close()


__all__ = ["Checkpointer", "dirty_token"]
