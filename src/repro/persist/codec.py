"""State-tree codec: JSON-safe manifests plus binary array blobs.

Checkpoints separate *structure* from *weights*: the structure (model
configs, mask layouts, counters, plan trees) is a plain JSON tree in
the manifest, while every ``numpy`` array is hoisted into a binary
blob and replaced by a ``{"__ndarray__": {...}}`` reference.  The
split keeps manifests human-inspectable (``python -m json.tool`` on
the manifest region shows exactly what a checkpoint holds) and keeps
float64 weights byte-exact — no text round-trip, so a restored model
predicts **bit-identically**.

The codec is deliberately strict: it encodes exactly the types the
serving stack's ``state_dict()`` forms produce (None, bool, int,
float, str, list/tuple, str-keyed dict, numpy scalars and arrays) and
raises :class:`~repro.errors.CheckpointError` on anything else, so a
new unserializable field fails at *save* time instead of producing a
checkpoint that cannot restore.

Plan trees get their own explicit codec (:func:`plan_to_state` /
:func:`plan_from_state`): the adaptation loop's feedback windows hold
:class:`~repro.engine.executor.LabeledPlan` records whose per-node
actual times are the refit training targets, so those fields must
survive a restart.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..catalog.statistics import Predicate
from ..engine.executor import LabeledPlan
from ..engine.operators import OperatorType, PlanNode
from ..errors import CheckpointCorruptError, CheckpointError

#: The manifest key marking an encoded array reference.
ARRAY_KEY = "__ndarray__"


class BlobStore:
    """Accumulates array payloads on encode; resolves references on
    decode.

    Blobs are raw ``ndarray.tobytes()`` payloads, ordered by reference
    index; the checkpoint container (:mod:`repro.persist.checkpoint`)
    owns their on-disk layout and integrity hashes.
    """

    def __init__(self, blobs: Optional[Sequence[bytes]] = None):
        """Start empty (encoding) or over *blobs* (decoding)."""
        self.blobs: List[bytes] = list(blobs or [])

    def add(self, array: np.ndarray) -> Dict[str, object]:
        """Store *array*'s bytes; returns its manifest reference."""
        arr = np.ascontiguousarray(array)
        index = len(self.blobs)
        self.blobs.append(arr.tobytes())
        return {
            ARRAY_KEY: {
                "blob": index,
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
            }
        }

    def get(self, ref: Mapping[str, object]) -> np.ndarray:
        """The array behind manifest reference *ref* (validated)."""
        try:
            spec = dict(ref[ARRAY_KEY])
            index = int(spec["blob"])
            dtype = np.dtype(str(spec["dtype"]))
            shape = tuple(int(dim) for dim in spec["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed array reference {ref!r}") from exc
        if not 0 <= index < len(self.blobs):
            raise CheckpointCorruptError(
                f"array reference points at blob {index}, "
                f"checkpoint has {len(self.blobs)}"
            )
        data = self.blobs[index]
        expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if len(data) != expected:
            raise CheckpointCorruptError(
                f"blob {index} holds {len(data)} bytes, "
                f"dtype/shape require {expected}"
            )
        return np.frombuffer(data, dtype=dtype).reshape(shape).copy()


def encode_state(value: object, store: BlobStore) -> object:
    """Recursively encode *value* into JSON-safe data, hoisting arrays
    into *store*.  Raises :class:`CheckpointError` on types the format
    does not cover."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return store.add(value)
    if isinstance(value, (list, tuple)):
        return [encode_state(item, store) for item in value]
    if isinstance(value, Mapping):
        out: Dict[str, object] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise CheckpointError(
                    f"checkpoint dict keys must be str, got {type(key).__name__} "
                    f"({key!r}); convert enum/typed keys before encoding"
                )
            if key == ARRAY_KEY:
                raise CheckpointError(
                    f"dict key {ARRAY_KEY!r} is reserved for array references"
                )
            out[key] = encode_state(item, store)
        return out
    raise CheckpointError(
        f"cannot serialize {type(value).__name__} into a checkpoint"
    )


def decode_state(value: object, store: BlobStore) -> object:
    """Inverse of :func:`encode_state`: resolve array references via
    *store*, recurse through lists and dicts."""
    if isinstance(value, dict):
        if ARRAY_KEY in value:
            return store.get(value)
        return {key: decode_state(item, store) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_state(item, store) for item in value]
    return value


# ----------------------------------------------------------------------
# plan trees and labelled records
# ----------------------------------------------------------------------
def _predicate_to_state(predicate: Predicate) -> Dict[str, object]:
    value = predicate.value
    if isinstance(value, tuple):
        value = list(value)
    return {
        "table": predicate.table,
        "column": predicate.column,
        "op": predicate.op,
        "value": value,
    }


def _predicate_from_state(state: Mapping[str, object]) -> Predicate:
    value = state.get("value")
    if isinstance(value, list):
        # BETWEEN/IN values are tuples in live predicates; restoring
        # the exact type keeps reprs (and plan fingerprints) stable.
        value = tuple(value)
    return Predicate(
        table=str(state["table"]),
        column=str(state["column"]),
        op=str(state["op"]),
        value=value,
    )


def plan_to_state(plan: PlanNode) -> Dict[str, object]:
    """A plan tree as plain data, covering every field featurization
    or refit training reads (estimates, actuals, structure)."""
    return {
        "op": plan.op.value,
        "table": plan.table,
        "index": plan.index,
        "predicates": [_predicate_to_state(p) for p in plan.predicates],
        "sort_keys": list(plan.sort_keys),
        "join_columns": list(plan.join_columns),
        "group_keys": list(plan.group_keys),
        "limit_count": plan.limit_count,
        "est_rows": plan.est_rows,
        "est_width": plan.est_width,
        "est_startup_cost": plan.est_startup_cost,
        "est_total_cost": plan.est_total_cost,
        "true_rows": plan.true_rows,
        "actual_ms": plan.actual_ms,
        "actual_total_ms": plan.actual_total_ms,
        "children": [plan_to_state(child) for child in plan.children],
    }


def plan_from_state(state: Mapping[str, object]) -> PlanNode:
    """Rebuild a plan tree from :func:`plan_to_state` output."""
    try:
        node = PlanNode(
            op=OperatorType(str(state["op"])),
            children=[plan_from_state(c) for c in state.get("children", [])],
            table=state.get("table"),
            index=state.get("index"),
            predicates=[
                _predicate_from_state(p) for p in state.get("predicates", [])
            ],
            sort_keys=tuple(state.get("sort_keys", ())),
            join_columns=tuple(state.get("join_columns", ())),
            group_keys=tuple(state.get("group_keys", ())),
            limit_count=state.get("limit_count"),
            est_rows=float(state.get("est_rows", 0.0)),
            est_width=int(state.get("est_width", 0)),
            est_startup_cost=float(state.get("est_startup_cost", 0.0)),
            est_total_cost=float(state.get("est_total_cost", 0.0)),
        )
    except CheckpointError:
        raise
    except Exception as exc:  # malformed state must stay a clean error
        raise CheckpointError(f"invalid plan state: {exc}") from exc
    node.true_rows = float(state.get("true_rows", 0.0))
    node.actual_ms = float(state.get("actual_ms", 0.0))
    node.actual_total_ms = float(state.get("actual_total_ms", 0.0))
    return node


def labeled_plan_to_state(record: LabeledPlan) -> Dict[str, object]:
    """A feedback/training record as plain data."""
    return {
        "plan": plan_to_state(record.plan),
        "latency_ms": record.latency_ms,
        "env_name": record.env_name,
        "query_sql": record.query_sql,
        "template": record.template,
    }


def labeled_plan_from_state(state: Mapping[str, object]) -> LabeledPlan:
    """Rebuild a record from :func:`labeled_plan_to_state` output."""
    try:
        return LabeledPlan(
            plan=plan_from_state(dict(state["plan"])),
            latency_ms=float(state["latency_ms"]),
            env_name=str(state["env_name"]),
            query_sql=str(state.get("query_sql", "")),
            template=str(state.get("template", "")),
        )
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(f"invalid labelled-plan state: {exc}") from exc


# ----------------------------------------------------------------------
# prepared feature-cache values
# ----------------------------------------------------------------------
def encode_prepared(value: object) -> Optional[Dict[str, object]]:
    """A feature-cache prepared value as plain data, or None when the
    form is not one the codec recognises (such entries are skipped —
    cache warmth is an optimisation, not an obligation).

    Recognised forms: None, a bare array (template skeletons), a list
    of per-node row arrays (pre-``PreparedPlan`` checkpoints), a
    grouped :class:`~repro.models.prepared.PreparedPlan`
    (``"qppnet_plan"``), an MSCN sample, and an MSCN template skeleton
    (``"mscn_template"``).
    """
    from ..featurization.mscn_features import MSCNSample, MSCNTemplate
    from ..models.prepared import PreparedPlan

    if value is None:
        return {"kind": "none"}
    if isinstance(value, np.ndarray):
        return {"kind": "array", "value": value}
    if isinstance(value, (list, tuple)) and all(
        isinstance(item, np.ndarray) for item in value
    ):
        return {"kind": "array_list", "values": list(value)}
    if isinstance(value, PreparedPlan):
        return {
            "kind": "qppnet_plan",
            "levels": [int(level) for level in value.levels],
            "ops": [op.value for op in value.ops],
            "feats": list(value.feats),
            "nodes": list(value.nodes),
            "children": list(value.children),
            "n_nodes": int(value.n_nodes),
        }
    if isinstance(value, MSCNSample):
        return {
            "kind": "mscn_sample",
            "tables": value.tables,
            "joins": value.joins,
            "predicates": value.predicates,
            "plan_global": value.plan_global,
        }
    if isinstance(value, MSCNTemplate):
        return {
            "kind": "mscn_template",
            "tables": value.tables,
            "joins": value.joins,
            "predicates": value.predicates,
            "plan_matrix": value.plan_matrix,
        }
    return None


def decode_prepared(state: Mapping[str, object]) -> object:
    """Inverse of :func:`encode_prepared` (arrays already decoded)."""
    from ..engine.operators import OperatorType
    from ..featurization.mscn_features import MSCNSample, MSCNTemplate
    from ..models.prepared import PreparedPlan

    kind = state.get("kind")
    if kind == "none":
        return None
    if kind == "array":
        return state["value"]
    if kind == "array_list":
        return list(state["values"])
    if kind == "qppnet_plan":
        try:
            return PreparedPlan(
                levels=[int(level) for level in state["levels"]],
                ops=[OperatorType(str(op)) for op in state["ops"]],
                feats=list(state["feats"]),
                nodes=list(state["nodes"]),
                children=list(state["children"]),
                n_nodes=int(state["n_nodes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"invalid qppnet_plan prepared value: {exc}"
            ) from exc
    if kind == "mscn_sample":
        return MSCNSample(
            tables=state["tables"],
            joins=state["joins"],
            predicates=state["predicates"],
            plan_global=state["plan_global"],
        )
    if kind == "mscn_template":
        return MSCNTemplate(
            tables=state["tables"],
            joins=state["joins"],
            predicates=state["predicates"],
            plan_matrix=state["plan_matrix"],
        )
    raise CheckpointError(f"unknown prepared-value kind {kind!r}")


#: Tuple export for callers that need every codec entry point.
__all__ = [
    "ARRAY_KEY",
    "BlobStore",
    "decode_prepared",
    "decode_state",
    "encode_prepared",
    "encode_state",
    "labeled_plan_from_state",
    "labeled_plan_to_state",
    "plan_from_state",
    "plan_to_state",
]
