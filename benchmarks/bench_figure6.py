"""Figure 6: ablation of QCFE design choices on QPPNet.

Paper: FST matches FSO's accuracy (simplified templates capture the
original workload's characteristics); difference propagation (FR)
outperforms gradient (GD) reduction, which suffers one-hot and dead
ReLU blind spots.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments import ABLATION_VARIANTS, figure6
from repro.eval.reporting import render_figure6


def test_figure6_ablation(benchmark, context, save_result):
    results = benchmark.pedantic(
        lambda: figure6(context), rounds=1, iterations=1
    )
    save_result("figure6", render_figure6(results))

    benchmarks = {bench for bench, _ in results}
    for bench_name in benchmarks:
        for variant in ABLATION_VARIANTS:
            assert (bench_name, variant) in results

    # FST stays within a factor of FSO on mean q-error (paper: 1.109
    # vs 1.098 etc. — simplified templates are a faithful substitute).
    fso = np.mean([results[(b, "FSO")].mean for b in benchmarks])
    fst = np.mean([results[(b, "FST")].mean for b in benchmarks])
    assert fst <= fso * 1.5

    # FR beats GD on average (paper: GD's wrong prunes cost accuracy).
    fr = np.mean([results[(b, "FSO+FR")].mean for b in benchmarks])
    gd = np.mean([results[(b, "FSO+GD")].mean for b in benchmarks])
    assert fr <= gd * 1.1
