"""Serving throughput: thin invocations of the `repro.bench` harness.

Not a paper figure — this drives the steady-state and cold-start
scenarios from :mod:`repro.bench.scenarios` (which own the traffic
generation, measurement and counter collection) and asserts the
serving layer's headline guarantees:

1. **Batching**: the fused batch-64 path at >= 3x the plans/sec of
   batch-1 over identical pre-built plans.
2. **Feature cache**: a warm cache beats the cold pass that pays
   featurization, and the cold pass misses once per unique plan.
3. **Open-loop health**: sustained Poisson traffic completes without
   errors.

The scenario runs also write ``BENCH_<scenario>.json`` trajectory
files into ``benchmarks/results/`` — the same files the CI perf gate
produces and compares against ``benchmarks/baselines/``.
"""

from __future__ import annotations

import pathlib

from repro.bench import run_scenarios
from repro.eval.reporting import render_bench_trajectory

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


#: The headline guarantee.  Quick mode measures the ratio over a few
#: milliseconds of wall clock, where a single scheduler preemption can
#: shave ~0.5x off an otherwise >3x ratio — the smoke bar keeps margin
#: for that noise; the full-scale run asserts the advertised 3x.
BATCH_SPEEDUP_FLOOR = 3.0
BATCH_SPEEDUP_FLOOR_QUICK = 2.2


def test_serving_throughput(save_result, quick):
    steady, cold = run_scenarios(
        ["steady-state", "cold-start"], quick=quick, out_dir=RESULTS_DIR
    )
    steady_metrics = steady["metrics"]
    cold_metrics = cold["metrics"]

    summary = (
        f"batch-64 vs batch-1 speedup: "
        f"{steady_metrics['extra']['batch_speedup']:.2f}x\n"
        f"warm vs cold feature cache: "
        f"{cold_metrics['extra']['warm_speedup']:.2f}x "
        f"(first request {cold_metrics['extra']['first_request_ms']:.2f} ms)\n"
        f"steady-state: {steady_metrics['throughput_rps']:.1f} req/s, "
        f"p99 {steady_metrics['latency_ms']['p99']:.3f} ms, "
        f"{steady_metrics['errors']} errors"
    )
    report = render_bench_trajectory([steady, cold]) + "\n\n" + summary
    save_result("serving", report)

    floor = BATCH_SPEEDUP_FLOOR_QUICK if quick else BATCH_SPEEDUP_FLOOR
    assert steady_metrics["extra"]["batch_speedup"] >= floor, summary
    assert steady_metrics["errors"] == 0, summary
    assert steady_metrics["completed"] > 0, summary
    # >= not >: the speedup is a ratio of log-bucketed p50s (~12%
    # resolution), so cold and warm landing in the same bucket reads
    # as exactly 1.0 — a measurement floor, not a regression.  The
    # cache-counter asserts below carry the behavioral guarantee.
    assert cold_metrics["extra"]["warm_speedup"] >= 1.0, summary
    assert cold_metrics["errors"] == 0, summary
    # The cold pass misses the feature cache once per unique plan (the
    # warm pass and the coalesced stragglers make up the hits).
    cache = cold_metrics["counters"]["feature_cache"]
    assert cache["misses"] >= cold_metrics["completed"] // 2, cache
    assert cache["hits"] > 0, cache
