"""Serving throughput: micro-batching and feature-cache speedups.

Not a paper figure — this measures the `repro.serving` subsystem that
wraps the trained estimators for online use:

1. **Batching**: `estimate_many` at batch sizes 1/8/64 over pre-built
   plans (isolating the featurize+predict path the batcher fuses) must
   show batch-64 at >= 3x the plans/sec of batch-1.
2. **Feature cache**: on a workload of repeated plans, a warm
   `FeatureCache` run must beat the cold run that pays featurization.

Also reports end-to-end (SQL text in) throughput for context.
"""

from __future__ import annotations

import time

from repro.core import QCFE, QCFEConfig
from repro.eval.harness import default_epochs, env_int
from repro.eval.reporting import render_serving_report
from repro.serving import CostService, SnapshotStore


def _throughput(run, count: int) -> float:
    start = time.perf_counter()
    run()
    return count / (time.perf_counter() - start)


def test_serving_throughput(context, save_result):
    bench = context.benchmark("sysbench")
    envs = context.environments(2)
    plans = env_int("QCFE_SERVING_PLANS", 192)
    labeled = context.labeled("sysbench", total=plans, env_count=2)

    pipeline = QCFE(
        bench,
        envs,
        QCFEConfig(model="qppnet", epochs=max(2, default_epochs() // 2)),
    )
    pipeline.fit(labeled)

    service = CostService(snapshot_store=SnapshotStore())
    service.deploy(pipeline.export_bundle())
    env = envs[0]
    # Pre-built plans isolate the estimation path from parse/plan time.
    plan_inputs = [record.plan for record in labeled]
    sql_inputs = [record.query_sql for record in labeled]

    # Warm the feature cache once so the batching comparison isolates
    # the predict path (featurization cost is the cache section below).
    service.estimate_many(plan_inputs, env, batch_size=64)
    throughput_rows = []
    rates = {}
    for batch_size in (1, 8, 64):
        rate = _throughput(
            lambda bs=batch_size: service.estimate_many(
                plan_inputs, env, batch_size=bs
            ),
            len(plan_inputs),
        )
        rates[batch_size] = rate
        throughput_rows.append(
            (f"plans, batch {batch_size}", rate, 1000.0 / rate)
        )

    # Cache speedup: identical workload, cold cache vs fully warm cache.
    service.cache.clear()
    cold = _throughput(
        lambda: service.estimate_many(plan_inputs, env, batch_size=8),
        len(plan_inputs),
    )
    warm = _throughput(
        lambda: service.estimate_many(plan_inputs, env, batch_size=8),
        len(plan_inputs),
    )
    throughput_rows.append(("cold cache, batch 8", cold, 1000.0 / cold))
    throughput_rows.append(("warm cache, batch 8", warm, 1000.0 / warm))

    # End-to-end (parse -> plan -> featurize -> predict) for context.
    service.cache.clear()
    sql_rate = _throughput(
        lambda: service.estimate_many(sql_inputs, env, batch_size=64),
        len(sql_inputs),
    )
    throughput_rows.append(("sql end-to-end, batch 64", sql_rate, 1000.0 / sql_rate))

    batch_speedup = rates[64] / rates[1]
    cache_speedup = warm / cold
    summary = (
        f"batch-64 vs batch-1 speedup: {batch_speedup:.2f}x "
        f"(batch1={rates[1]:.1f}/s, batch64={rates[64]:.1f}/s)\n"
        f"warm vs cold feature cache: {cache_speedup:.2f}x "
        f"(cold={cold:.1f}/s, warm={warm:.1f}/s)"
    )
    report = (
        render_serving_report(
            throughput_rows,
            service.stats.stage_rows(),
            [
                (
                    "feature-cache",
                    service.cache.stats.hits,
                    service.cache.stats.misses,
                    service.cache.stats.hit_rate,
                )
            ],
        )
        + "\n\n"
        + summary
    )
    save_result("serving", report)
    service.close()

    assert batch_speedup >= 3.0, summary
    assert warm > cold, summary
