"""Table VI: robustness of the reference count in feature reduction.

Paper: the q-error is stable as the reference-set size grows, the
reduction ratio stays ~40%, and the FR runtime grows linearly.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments import table6
from repro.eval.reporting import render_table6


def test_table6_reference_robustness(benchmark, context, save_result):
    counts = (4, 8, 16, 32, 64)
    rows = benchmark.pedantic(
        lambda: table6(context, reference_counts=counts), rounds=1, iterations=1
    )
    save_result("table6", render_table6(rows))

    errors = [row.mean_q_error for row in rows]
    ratios = [row.reduction_ratio for row in rows]
    runtimes = [row.fr_runtime_seconds for row in rows]
    # Accuracy robust to the reference count.
    assert max(errors) < 1.5 * min(errors)
    # Reduction ratio robust.
    assert max(ratios) - min(ratios) < 0.2
    # Runtime grows (roughly linearly) with the reference count.
    assert runtimes[-1] > runtimes[0]
    correlation = np.corrcoef(counts, runtimes)[0, 1]
    assert correlation > 0.8
