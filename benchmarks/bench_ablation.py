"""Ablations of this reproduction's own design choices (see DESIGN.md).

1. **Warm-started reduced retraining** — dropping constant dimensions
   folds exactly into the first-layer bias, so the reduced model can
   start at the base model's function.  Compared against retraining the
   reduced model cold.
2. **Snapshot granularity** — operator-level (the paper's default) vs
   the operator-table extension of Section III's discussion, measured
   as mean absolute per-node residual of the logical-formula fits.
"""

from __future__ import annotations


from repro.core.granularity import fit_fine_grained, residual_improvement
from repro.core.pipeline import QCFE, QCFEConfig
from repro.core.templates import generate_simplified_queries
from repro.engine.executor import ExecutionSimulator
from repro.eval.harness import default_epochs
from repro.eval.metrics import summarize_q_errors
from repro.models.training import train_test_split
from repro.eval.reporting import format_table


def test_ablation_warm_start(benchmark, context, save_result):
    bench = context.benchmark("joblight")
    envs = context.environments()
    labeled = context.labeled("joblight")
    train, test = train_test_split(labeled, seed=0)
    epochs = default_epochs()

    def run() -> dict:
        results = {}
        for label, warm in (("warm-start", True), ("cold-retrain", False)):
            pipeline = QCFE(
                bench, envs,
                QCFEConfig(model="qppnet", snapshot_source="template",
                           reduction="diff", epochs=epochs),
            )
            if not warm:
                # Disable the fold by masking with no fold means.
                original = pipeline.estimator.set_masks

                def cold_set_masks(masks, fold_means=None, _orig=original):
                    _orig(masks, fold_means=None)

                pipeline.estimator.set_masks = cold_set_masks  # type: ignore[method-assign]
            pipeline.fit(train)
            predictions = pipeline.predict_many(test)
            results[label] = summarize_q_errors(
                predictions, [r.latency_ms for r in test]
            ).mean
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(label, f"{value:.3f}") for label, value in results.items()]
    save_result("ablation_warmstart", format_table(["variant", "mean q-error"], rows))
    assert results["warm-start"] <= results["cold-retrain"] * 1.1


def test_ablation_snapshot_granularity(benchmark, context, save_result):
    bench = context.benchmark("tpch")
    env = context.environments(2)[0]
    simulator = ExecutionSimulator(bench.catalog, bench.stats, env)

    def run():
        fit_queries = generate_simplified_queries(
            bench.template_texts, bench.catalog, bench.abstract, scale=4, seed=1
        )
        snapshot = fit_fine_grained(fit_queries, simulator)
        fresh = generate_simplified_queries(
            bench.template_texts, bench.catalog, bench.abstract, scale=2, seed=9
        )
        coarse, fine = residual_improvement(snapshot, fresh, simulator)
        return coarse, fine, snapshot.fine_key_count

    coarse, fine, keys = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("operator-level", f"{coarse:.3f}"),
        (f"operator-table ({keys} keys)", f"{fine:.3f}"),
    ]
    save_result(
        "ablation_granularity",
        format_table(["snapshot granularity", "mean |residual| (ms)"], rows),
    )
    assert fine <= coarse * 1.05
