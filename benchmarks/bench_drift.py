"""Drift adaptation under live traffic: detect -> refit -> hot-swap.

Not a paper figure — this drives the `repro.serving.adaptation` loop
end-to-end, the serving-layer answer to the paper's Section IV
"dynamic workloads" discussion:

1. Reduce features on a point-select-only Sysbench mix (the read-mix
   half of sysbench's OLTP transaction) and deploy the bundle.
2. Shift the workload to the range-query mix and stream it through the
   service — estimates plus execution feedback.
3. The background RefitWorker must flag >= 1 recalled dimension,
   warm-retrain off the hot path, shadow-score and promote.

Asserted:
- the adaptation loop recalls at least one pruned dimension;
- the promoted bundle's q-error on the drifted workload beats the
  stale bundle's;
- serving p50 latency is unchanged while the refit runs (the refit is
  fully off the hot path);
- a 16-thread async hammer against the service during adaptation
  returns finite estimates throughout.

A TPC-H template-mix shift runs as a second scenario (skipped under
``--quick``).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core import QCFE, QCFEConfig, collect_baselines
from repro.engine.executor import ExecutionSimulator, LabeledPlan
from repro.eval.harness import default_epochs, env_int
from repro.nn.loss import numpy_q_error
from repro.serving import AdaptationConfig, CostService, SnapshotStore

#: With the refit off the hot path, p50 must not move; the generous
#: bound absorbs CI scheduling noise while still failing hard if the
#: refit ever blocks request threads (that costs >100x, not <5x).
P50_BUDGET = 5.0


def _labeled(benchmark, environments, keep, total, seed):
    """Labelled plans restricted to template names accepted by *keep*."""
    per_env = max(1, total // len(environments))
    labeled = []
    for env_index, env in enumerate(environments):
        simulator = ExecutionSimulator(benchmark.catalog, benchmark.stats, env)
        pool = benchmark.generate_queries(per_env * 8, seed=seed + env_index)
        picked = [(n, q) for n, q in pool if keep(n)][:per_env]
        for name, query in picked:
            result = simulator.run_query(query)
            labeled.append(
                LabeledPlan(
                    plan=result.plan, latency_ms=result.latency_ms,
                    env_name=env.name, query_sql=query.sql(), template=name,
                )
            )
    return labeled


def _p50(latencies):
    return float(np.percentile(np.array(latencies), 50)) if latencies else 0.0


def _interleave(records):
    """Round-robin records across environments: realistic concurrent
    traffic, and it keeps the refit window's train/shadow split (oldest
    train, newest shadow) covering every environment."""
    by_env = {}
    for record in records:
        by_env.setdefault(record.env_name, []).append(record)
    queues = list(by_env.values())
    out = []
    index = 0
    while any(queues):
        queue = queues[index % len(queues)]
        if queue:
            out.append(queue.pop(0))
        index += 1
    return out


def _drive_adaptation(
    benchmark, envs, train_keep, drift_keep, epochs, total, refit_epochs
):
    """One drift scenario; returns a dict of measurements."""
    stale_set = _labeled(benchmark, envs, train_keep, total, seed=1)
    pipeline = QCFE(
        benchmark,
        envs,
        QCFEConfig(
            model="qppnet", epochs=epochs, template_scale=4, reduction="diff"
        ),
    )
    pipeline.fit(stale_set)
    baselines = collect_baselines(pipeline.operator_encoder, stale_set)

    drifted = _interleave(_labeled(benchmark, envs, drift_keep, total, seed=9))
    env_by_name = {env.name: env for env in envs}

    service = CostService(
        snapshot_store=SnapshotStore(),
        adaptation=AdaptationConfig(
            background=True,
            poll_interval_s=0.01,
            min_refit_records=min(24, len(drifted)),
            refit_epochs=refit_epochs,
        ),
    )
    bundle = pipeline.export_bundle()
    bundle.metadata["recall_baselines"] = baselines
    deployed = service.deploy(bundle)
    name = deployed.name
    stale = service.registry.get(name)

    probe = [(r.plan, env_by_name[r.env_name]) for r in drifted[:32]]

    def measure(count):
        out = []
        for i in range(count):
            plan, env = probe[i % len(probe)]
            start = time.perf_counter()
            service.estimate(plan, env)
            out.append((time.perf_counter() - start) * 1000.0)
        return out

    # Warm-up + baseline serving latency, before any drift is flagged.
    measure(32)
    before = measure(96)

    # The drifted workload arrives: feedback fills the refit window and
    # wakes the worker.
    for record in drifted:
        service.record_feedback(record, env_by_name[record.env_name])

    # Serve continuously WHILE the background refit runs; also hammer
    # the async path from 16 threads to shake out concurrency bugs.
    during = []
    stats = service.adaptation.stats
    hammer_values = []
    hammer_lock = threading.Lock()

    def hammer(seed):
        futures = []
        for i in range(8):
            plan, env = probe[(seed * 8 + i) % len(probe)]
            futures.append(service.estimate_async(plan, env))
        values = [f.result(timeout=30.0) for f in futures]
        with hammer_lock:
            hammer_values.extend(values)

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(16)]
    for t in threads:
        t.start()
    deadline = time.monotonic() + 120.0
    # Keep sampling until the refit has resolved AND we hold enough
    # samples for a meaningful p50 — a refit finishing faster than the
    # first measurement batch must not leave `during` empty (a p50 of
    # 0.0 would pass the latency assertion vacuously).
    while (
        stats.promotions + stats.rollbacks < 1 or len(during) < 64
    ) and time.monotonic() < deadline:
        during.extend(measure(8))
    for t in threads:
        t.join()
    refitted = stats.promotions + stats.rollbacks >= 1
    service.adaptation.wait_idle(timeout=30.0)

    promoted = service.registry.get(name)
    actual = np.array([r.latency_ms for r in drifted])
    stale_q = float(numpy_q_error(stale.predict_many(drifted), actual).mean())
    new_q = float(numpy_q_error(promoted.predict_many(drifted), actual).mean())
    watcher = service.adaptation.watcher(name)
    measurements = {
        "benchmark": benchmark.name,
        "flagged": watcher.recall.total_flagged,
        "refits": stats.refits,
        "promotions": stats.promotions,
        "rollbacks": stats.rollbacks,
        "refitted": refitted,
        "stale_version": stale.version,
        "promoted_version": promoted.version,
        "stale_q": stale_q,
        "new_q": new_q,
        "p50_before_ms": _p50(before),
        "p50_during_ms": _p50(during),
        "hammer_ok": bool(
            hammer_values and np.isfinite(hammer_values).all()
        ),
        "report": service.report(),
    }
    service.close()
    return measurements


def _render(m):
    return (
        f"[{m['benchmark']}] recalled dims: {m['flagged']}, "
        f"refits: {m['refits']} "
        f"(promoted {m['promotions']}, rolled back {m['rollbacks']})\n"
        f"[{m['benchmark']}] bundle version {m['stale_version']} -> "
        f"{m['promoted_version']}\n"
        f"[{m['benchmark']}] drifted-workload mean q-error: "
        f"stale {m['stale_q']:.3f} -> promoted {m['new_q']:.3f}\n"
        f"[{m['benchmark']}] serving p50: {m['p50_before_ms']:.3f} ms before, "
        f"{m['p50_during_ms']:.3f} ms during refit\n"
    )


def test_drift_adaptation(context, save_result, quick):
    envs = context.environments(2)
    total = env_int("QCFE_DRIFT_PLANS", 48 if quick else 96)
    epochs = 2 if quick else max(3, default_epochs() // 3)

    range_shapes = {"simple_range", "sum_range", "order_range", "distinct_range"}
    sysbench = _drive_adaptation(
        context.benchmark("sysbench"),
        envs,
        train_keep=lambda n: n == "point_select",
        drift_keep=lambda n: n in range_shapes,
        epochs=epochs,
        total=total,
        refit_epochs=2 if quick else 4,
    )
    sections = [_render(sysbench)]

    tpch_m = None
    if not quick:
        # Second scenario: a TPC-H template-mix shift (the analytic
        # analogue of a read/write-mix change — half the templates,
        # with their columns/operators, only appear after the drift).
        tpch = context.benchmark("tpch")
        names = sorted({name for name, _ in tpch.generate_queries(64, seed=0)})
        head = set(names[: len(names) // 2])
        tpch_m = _drive_adaptation(
            tpch,
            envs,
            train_keep=lambda n: n in head,
            drift_keep=lambda n: n not in head,
            epochs=epochs,
            total=total,
            refit_epochs=4,
        )
        sections.append(_render(tpch_m))
    report = "\n".join(sections) + "\n" + sysbench["report"]
    save_result("drift", report)

    # -- acceptance ----------------------------------------------------
    assert sysbench["flagged"] >= 1, report
    assert sysbench["refitted"], report
    assert sysbench["promotions"] >= 1, report
    assert sysbench["promoted_version"] > sysbench["stale_version"], report
    assert sysbench["new_q"] < sysbench["stale_q"], report
    assert sysbench["hammer_ok"], report
    # Refit fully off the hot path: p50 holds while retraining runs.
    assert sysbench["p50_during_ms"] > 0.0, report  # never vacuous
    assert sysbench["p50_during_ms"] <= P50_BUDGET * max(
        sysbench["p50_before_ms"], 0.01
    ), report
    if tpch_m is not None:
        # The TPC-H shift must clear the same bar.
        assert tpch_m["flagged"] >= 1, report
        assert tpch_m["promotions"] >= 1, report
        assert tpch_m["new_q"] < tpch_m["stale_q"], report
        assert tpch_m["hammer_ok"], report
        assert tpch_m["p50_during_ms"] > 0.0, report
        assert tpch_m["p50_during_ms"] <= P50_BUDGET * max(
            tpch_m["p50_before_ms"], 0.01
        ), report
