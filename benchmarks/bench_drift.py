"""Drift adaptation under live traffic: detect -> refit -> hot-swap.

Not a paper figure — a thin invocation of the ``drift-under-load``
scenario from :mod:`repro.bench.scenarios` (the harness owns the
stale-training, drifted-traffic replay, async hammer and latency
sampling), asserting the serving-layer answer to the paper's Section
IV "dynamic workloads" discussion:

- the adaptation loop recalls at least one pruned dimension;
- the promoted bundle's q-error on the drifted workload beats the
  stale bundle's;
- serving p50 latency is unchanged while the refit runs (the refit is
  fully off the hot path);
- the concurrent async hammer finishes without errors.

A TPC-H template-mix shift runs as a second scenario (skipped under
``--quick``).  Trajectory JSON lands in ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

from repro.bench import run_scenarios

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: With the refit off the hot path, p50 must not move; the generous
#: bound absorbs CI scheduling noise while still failing hard if the
#: refit ever blocks request threads (that costs >100x, not <5x).
P50_BUDGET = 5.0


def _render(extra: dict) -> str:
    return (
        f"[{extra['drift_mode']}] recalled dims: {extra['flagged']}, "
        f"refits: {extra['refits']} (promoted {extra['promotions']}, "
        f"rolled back {extra['rollbacks']})\n"
        f"bundle version {extra['stale_version']} -> "
        f"{extra['promoted_version']}\n"
        f"drifted-workload mean q-error: stale {extra['stale_q']:.3f} -> "
        f"promoted {extra['new_q']:.3f}\n"
        f"serving p50: {extra['p50_before_ms']:.3f} ms before, "
        f"{extra['p50_during_ms']:.3f} ms during refit\n"
        f"async hammer: {extra['hammer_completed']} requests, "
        f"{extra['hammer_errors']} errors\n"
    )


def _check(extra: dict, report: str) -> None:
    assert extra["flagged"] >= 1, report
    assert extra["refitted"], report
    assert extra["promotions"] >= 1, report
    assert extra["promoted_version"] > extra["stale_version"], report
    assert extra["new_q"] < extra["stale_q"], report
    assert extra["hammer_errors"] == 0 and extra["hammer_completed"] > 0, report
    # Refit fully off the hot path: p50 holds while retraining runs.
    assert extra["p50_during_ms"] > 0.0, report  # never vacuous
    assert extra["p50_during_ms"] <= P50_BUDGET * max(
        extra["p50_before_ms"], 0.01
    ), report


def test_drift_adaptation(save_result, quick):
    names = ["drift-under-load"]
    if not quick:
        # Second scenario: a TPC-H template-mix shift (the analytic
        # analogue of a read/write-mix change — half the templates,
        # with their columns/operators, only appear after the drift).
        names.append("drift-under-load-tpch")
    results = run_scenarios(names, quick=quick, out_dir=RESULTS_DIR)

    extras = [result["metrics"]["extra"] for result in results]
    report = "\n".join(_render(extra) for extra in extras)
    save_result("drift", report)
    for extra in extras:
        _check(extra, report)
