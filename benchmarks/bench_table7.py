"""Table VII: transferability of the feature snapshot to new hardware.

Paper: swapping in an h2-fitted snapshot plus a little retraining
reaches accuracy similar to a model trained from scratch on h2 data,
at a fraction of the training time; FST transfers as well as FSO.
"""

from __future__ import annotations

from repro.eval.experiments import table7
from repro.eval.reporting import render_table7


def test_table7_transferability(benchmark, context, save_result):
    rows = benchmark.pedantic(lambda: table7(context), rounds=1, iterations=1)
    save_result("table7", render_table7(rows))

    for bench_name in ("tpch", "joblight"):
        by_model = {r.model: r for r in rows if r.benchmark == bench_name}
        assert set(by_model) == {"basis", "direct", "trans-FSO", "trans-FST"}
        # Transfer retraining is much cheaper than direct training.
        assert (
            by_model["trans-FSO"].train_seconds < 0.6 * by_model["direct"].train_seconds
        )
        assert (
            by_model["trans-FST"].train_seconds < 0.6 * by_model["direct"].train_seconds
        )
        # And reaches accuracy comparable to (or better than) direct.
        assert (
            by_model["trans-FST"].mean_q_error < 1.5 * by_model["direct"].mean_q_error
        )
