"""Figure 8: convergence of direct vs transferred training.

Paper: the transferred model reaches the direct model's accuracy with
~25% of the training iterations on the new hardware.
"""

from __future__ import annotations

from repro.eval.experiments import figure8
from repro.eval.reporting import render_figure8


def test_figure8_convergence(benchmark, context, save_result):
    curves = benchmark.pedantic(
        lambda: figure8(context, benchmark_name="tpch"), rounds=1, iterations=1
    )
    save_result("figure8", render_figure8(curves))

    direct = dict(curves["direct"])
    transfer = dict(curves["transfer"])
    first = min(direct)
    last = max(direct)
    # At the first checkpoint the transferred model is already at least
    # as good as the direct model...
    assert transfer[first] <= direct[first]
    # ...and its early accuracy is comparable to the direct model's
    # final accuracy (the 25%-of-training-time claim).
    assert transfer[first] <= direct[last] * 1.5
