"""Benchmark harness configuration.

Every bench regenerates one table/figure of the paper at a reduced
default scale (override with QCFE_SCALE / QCFE_EPOCHS / QCFE_ENVS) and
writes the rendered result to ``benchmarks/results/<name>.txt`` in the
paper's row/series format, in addition to printing it.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.eval.harness import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="smoke mode: minimal scales so CI stress jobs can run the "
        "serving/drift benches on every push",
    )


@pytest.fixture(scope="session")
def quick(request):
    """True under ``--quick``: benches shrink to smoke-test scale."""
    return bool(request.config.getoption("--quick"))


@pytest.fixture(scope="session")
def context():
    """One shared context so benches reuse labelled collections."""
    return ExperimentContext(seed=0)


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return save
