"""Table IV: time-accuracy of the five estimators across scales.

Paper: PGSQL has three-to-six digit mean q-errors and weak Pearson;
QCFE(mscn)/QCFE(qpp) beat MSCN/QPPNet on accuracy while training
faster, on TPCH, Sysbench and job-light at every labelled-set scale.
"""

from __future__ import annotations

from repro.eval.experiments import table4
from repro.eval.harness import default_scale
from repro.eval.reporting import render_table4


def test_table4_time_accuracy(benchmark, context, save_result):
    scale = default_scale()
    rows = benchmark.pedantic(
        lambda: table4(context, scales=(scale // 2, scale)),
        rounds=1,
        iterations=1,
    )
    save_result("table4", render_table4(rows))

    by_key = {(r.benchmark, r.model, r.scale): r for r in rows}
    for bench_name in ("tpch", "sysbench", "joblight"):
        # PG baseline is off by orders of magnitude, learned models are not.
        assert by_key[(bench_name, "PGSQL", scale)].mean_q_error > 50
        for model in ("QCFE(mscn)", "QCFE(qpp)", "MSCN", "QPPNet"):
            assert by_key[(bench_name, model, scale)].mean_q_error < 50
    # Headline: QCFE improves its base model on mean q-error for most
    # (benchmark, scale) cells.
    wins = 0
    cells = 0
    for bench_name in ("tpch", "sysbench", "joblight"):
        for s in (scale // 2, scale):
            for qcfe, base in (("QCFE(mscn)", "MSCN"), ("QCFE(qpp)", "QPPNet")):
                cells += 1
                if (
                    by_key[(bench_name, qcfe, s)].mean_q_error
                    <= by_key[(bench_name, base, s)].mean_q_error * 1.05
                ):
                    wins += 1
    assert wins >= cells * 0.6
