"""Figure 5: q-error quantile boxes (25/50/75 percentiles).

Paper: QCFE reduces the variance of the q-error relative to the base
models across benchmarks and scales.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments import figure5
from repro.eval.harness import default_scale
from repro.eval.reporting import render_figure5


def test_figure5_quantile_boxes(benchmark, context, save_result):
    scale = default_scale()
    boxes = benchmark.pedantic(
        lambda: figure5(context, scales=(scale,)),
        rounds=1,
        iterations=1,
    )
    save_result("figure5", render_figure5(boxes))

    for box in boxes.values():
        assert 1.0 <= box["q25"] <= box["q50"] <= box["q75"]
    # QCFE's inter-quartile spread is no worse than the base models' on
    # average (the paper's variance-reduction claim).
    def spread(model):
        widths = [
            box["q75"] - box["q25"]
            for (bench_name, m, s), box in boxes.items()
            if m == model
        ]
        return float(np.mean(widths))

    assert spread("QCFE(qpp)") <= spread("QPPNet") * 1.2
