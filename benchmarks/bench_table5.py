"""Table V: robustness of the simplified-template scale.

Paper: FST reaches FSO-competitive q-error while cutting snapshot
collection cost (TPCH: 3.8h vs 7.7h; job-light: ~11%), and the q-error
is robust to the template scale N.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments import table5
from repro.eval.reporting import render_table5


def test_table5_template_scale(benchmark, context, save_result):
    rows = benchmark.pedantic(
        lambda: table5(context, scales=(1, 2, 4, 8)), rounds=1, iterations=1
    )
    save_result("table5", render_table5(rows))

    for bench_name in ("tpch", "joblight"):
        bench_rows = {r.label: r for r in rows if r.benchmark == bench_name}
        fso = bench_rows["FSO"]
        # Small-scale FST is cheaper to collect than FSO...
        assert bench_rows["scale=1"].collection_ms < fso.collection_ms
        # ... and q-error stays in the same ballpark and is robust in N.
        fst_errors = [
            row.mean_q_error for label, row in bench_rows.items() if label != "FSO"
        ]
        assert max(fst_errors) < 2.5 * fso.mean_q_error
        assert np.std(fst_errors) < np.mean(fst_errors)  # no blow-ups
        # Collection cost grows with the scale parameter.
        assert (
            bench_rows["scale=8"].collection_ms > bench_rows["scale=1"].collection_ms
        )
