"""Figure 1: average query cost across database environments.

Paper: the same 1000 queries cost 2-3x more under some of five random
knob configurations than others, on both TPCH and Sysbench — the
motivation for the feature snapshot.
"""

from __future__ import annotations

from repro.eval.experiments import figure1
from repro.eval.reporting import render_figure1


def test_figure1_environment_spread(benchmark, context, save_result):
    result = benchmark.pedantic(
        lambda: figure1(context, n_environments=5, n_queries=60),
        rounds=1,
        iterations=1,
    )
    save_result("figure1", render_figure1(result))
    for per_env in result.values():
        values = list(per_env.values())
        assert max(values) > min(values)
