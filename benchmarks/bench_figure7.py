"""Figure 7: features reduced per operator by Greedy / GD / FR on TPCH.

Paper: Greedy removes ~1.2% of features (it cannot see co-related
pairs), while GD and FR remove ~41%; FR's choices are the trustworthy
ones.
"""

from __future__ import annotations

from repro.eval.experiments import figure7
from repro.eval.reporting import render_figure7


def test_figure7_reduction_counts(benchmark, context, save_result):
    counts = benchmark.pedantic(
        lambda: figure7(context, benchmark_name="tpch"), rounds=1, iterations=1
    )
    save_result("figure7", render_figure7(counts))

    by_method = {entry.method: entry for entry in counts}
    assert set(by_method) == {"Greedy", "GD", "FR"}
    # Shape: greedy keeps almost everything; FR and GD prune heavily.
    assert by_method["Greedy"].reduction_ratio < 0.15
    assert by_method["FR"].reduction_ratio > 0.3
    assert by_method["GD"].reduction_ratio > 0.3
    # Per-operator counts exist for every fitted operator.
    assert by_method["FR"].kept
    for kept in by_method["FR"].kept.values():
        assert 0 < kept <= by_method["FR"].total_features
