"""Legacy setup shim.

The offline environment has no ``wheel`` package, so PEP 517 editable
installs fail; ``pip install -e . --no-build-isolation --no-use-pep517``
uses this file instead.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
