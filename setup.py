"""Packaging for the QCFE reproduction.

The package lives under ``src/`` (src-layout), so ``package_dir`` /
``find_packages("src")`` below are what make ``pip install -e .``
expose ``repro`` (including ``repro.serving``) without PYTHONPATH
hacks.  The offline environment has no ``wheel`` package, so PEP 517
editable installs can fail; use::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import find_packages, setup

setup(
    name="qcfe-repro",
    version="1.0.0",
    description=(
        "Reproduction of QCFE: an efficient feature engineering for "
        "query cost estimation (ICDE 2024), with an online serving layer"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
)
